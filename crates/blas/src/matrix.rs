//! Dense row-major matrices used by the kernels, examples and tests.

use std::fmt;

/// A dense row-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A square identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// A deterministic pseudo-random matrix (xorshift; no external RNG needed) with entries
    /// in `[-0.5, 0.5)`.
    pub fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
            | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
    }

    /// A symmetric positive-definite matrix (for Cholesky tests): `A = B·Bᵀ + n·I`.
    pub fn spd(n: usize, seed: u64) -> Self {
        let b = Matrix::pseudo_random(n, n, seed);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[(i, k)] * b[(j, k)];
                }
                a[(i, j)] = s;
            }
            a[(i, i)] += n as f64;
        }
        a
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the backing storage (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing storage (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow one row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Reference multiply: `C = A·B` computed with the naive triple loop (used to validate
    /// the parallel kernels).
    pub fn multiply_reference(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols, b.rows, "dimension mismatch");
        let mut c = Matrix::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for k in 0..a.cols {
                let aik = a[(i, k)];
                for j in 0..b.cols {
                    c[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        c
    }

    /// Largest absolute element-wise difference between two matrices.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let a = Matrix::pseudo_random(5, 5, 1);
        let i = Matrix::identity(5);
        let prod = Matrix::multiply_reference(&a, &i);
        assert!(prod.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn indexing_and_from_fn() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(2, 3)], 23.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn pseudo_random_is_deterministic_and_bounded() {
        let a = Matrix::pseudo_random(8, 8, 42);
        let b = Matrix::pseudo_random(8, 8, 42);
        let c = Matrix::pseudo_random(8, 8, 43);
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c) > 0.0);
        assert!(a.as_slice().iter().all(|x| x.abs() <= 0.5));
    }

    #[test]
    fn spd_matrix_is_symmetric_with_dominant_diagonal() {
        let a = Matrix::spd(6, 3);
        for i in 0..6 {
            assert!(a[(i, i)] >= 6.0);
            for j in 0..6 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::pseudo_random(4, 7, 9);
        assert!(a.transpose().transpose().max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        let i = Matrix::identity(9);
        assert!((i.frobenius_norm() - 3.0).abs() < 1e-12);
    }
}
