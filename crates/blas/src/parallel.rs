//! The parallel BLAS backend (the "inner runtime" of the nested workloads).

use crate::config::{BarrierKind, BlasConfig, BlasThreading};
use crate::kernels;
use crate::matrix::Matrix;
use std::sync::Arc;
use usf_core::sync::{Barrier, BusyBarrier};
use usf_runtimes::forkjoin::{Team, TeamConfig};
use usf_runtimes::threadpool::TransientPool;

/// Mutable pointer that can be shared across kernel workers. Each worker touches a disjoint
/// row range of the output, which is what makes the aliasing sound.
#[derive(Clone, Copy)]
struct SharedOut(*mut f64);
unsafe impl Send for SharedOut {}
unsafe impl Sync for SharedOut {}

impl SharedOut {
    /// Raw base pointer. Accessed through a method so closures capture the whole wrapper
    /// (which is `Sync`) rather than the raw pointer field.
    fn ptr(&self) -> *mut f64 {
        self.0
    }
}

/// End-of-kernel synchronization object built per call according to the configuration.
enum KernelBarrier {
    Busy(BusyBarrier),
    Blocking(Barrier),
}

impl KernelBarrier {
    fn new(kind: BarrierKind, participants: usize) -> Self {
        match kind {
            BarrierKind::BusySpin => KernelBarrier::Busy(BusyBarrier::new(participants, None)),
            BarrierKind::BusyYield { yield_every } => {
                KernelBarrier::Busy(BusyBarrier::new(participants, Some(yield_every)))
            }
            BarrierKind::Blocking => KernelBarrier::Blocking(Barrier::new(participants)),
        }
    }

    fn wait(&self) {
        match self {
            KernelBarrier::Busy(b) => {
                b.wait();
            }
            KernelBarrier::Blocking(b) => {
                b.wait();
            }
        }
    }
}

/// A handle to the parallel BLAS library: owns the inner runtime (a persistent team or a
/// spawn-per-call pool) and runs kernels with the configured synchronization behaviour.
pub struct BlasHandle {
    config: BlasConfig,
    team: Option<Team>,
    pool: Option<TransientPool>,
}

impl BlasHandle {
    /// Create a handle (spawning the persistent team if the configuration asks for one).
    pub fn new(config: BlasConfig) -> Self {
        let (team, pool) = match config.threading {
            BlasThreading::OpenMpLike => {
                let team = Team::new(
                    TeamConfig::new(config.threads.max(1), config.exec.clone())
                        .wait_policy(config.wait_policy)
                        .name("blas"),
                );
                (Some(team), None)
            }
            BlasThreading::PthreadPerCall => (None, Some(TransientPool::new(config.exec.clone()))),
        };
        BlasHandle { config, team, pool }
    }

    /// The configuration of this handle.
    pub fn config(&self) -> &BlasConfig {
        &self.config
    }

    /// Number of inner threads used per kernel call.
    pub fn threads(&self) -> usize {
        self.config.threads.max(1)
    }

    /// Parallel `C += A · B` (`A`: `m×k`, `B`: `k×n`, `C`: `m×n`, row-major). Rows of `C`
    /// are partitioned over the inner threads; every worker then waits at the configured
    /// end-of-kernel barrier (mirroring the busy-wait join of OpenBLAS/BLIS).
    pub fn gemm_acc(&self, m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
        assert_eq!(a.len(), m * k, "A dimension mismatch");
        assert_eq!(b.len(), k * n, "B dimension mismatch");
        assert_eq!(c.len(), m * n, "C dimension mismatch");
        if m == 0 || n == 0 {
            return;
        }
        let workers = self.threads().min(m).max(1);
        if workers == 1 {
            kernels::gemm_acc(m, k, n, a, b, c);
            return;
        }
        let barrier = Arc::new(KernelBarrier::new(self.config.barrier, workers));
        let out = SharedOut(c.as_mut_ptr());
        let rows_per = m.div_ceil(workers);
        let body = |t: usize| {
            let r0 = t * rows_per;
            let r1 = ((t + 1) * rows_per).min(m);
            if r0 < r1 {
                // Safety: each worker writes only rows [r0, r1) of C, and the ranges are
                // disjoint across workers; A and B are read-only.
                let c_chunk =
                    unsafe { std::slice::from_raw_parts_mut(out.ptr().add(r0 * n), (r1 - r0) * n) };
                let a_chunk = &a[r0 * k..r1 * k];
                kernels::gemm_acc(r1 - r0, k, n, a_chunk, b, c_chunk);
            }
            barrier.wait();
        };
        match (&self.team, &self.pool) {
            (Some(team), _) => team.parallel(workers, |ctx| body(ctx.thread_num())),
            (_, Some(pool)) => pool.run(workers, body),
            _ => unreachable!("one backend is always configured"),
        }
    }

    /// Convenience wrapper: allocate and return `A · B`.
    pub fn gemm(&self, a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "dimension mismatch");
        let mut c = Matrix::zeros(a.rows(), b.cols());
        self.gemm_acc(
            a.rows(),
            a.cols(),
            b.cols(),
            a.as_slice(),
            b.as_slice(),
            c.as_mut_slice(),
        );
        c
    }

    /// Tile operation: in-place Cholesky factor of an `n×n` tile (serial; the parallelism of
    /// the blocked Cholesky comes from the outer task graph).
    pub fn potrf(&self, n: usize, a: &mut [f64]) -> Result<(), usize> {
        kernels::potrf(n, a)
    }

    /// Tile operation: `B := B · L⁻ᵀ`.
    pub fn trsm(&self, n: usize, l: &[f64], b: &mut [f64]) {
        kernels::trsm_right_lower_transpose(n, l, b);
    }

    /// Tile operation: `C -= A · Aᵀ` (lower triangle).
    pub fn syrk(&self, n: usize, a: &[f64], c: &mut [f64]) {
        kernels::syrk_ln_sub(n, a, c);
    }

    /// Tile operation: `C -= A · Bᵀ`, parallelized over the inner threads like
    /// [`BlasHandle::gemm_acc`].
    pub fn gemm_nt_sub(&self, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
        assert_eq!(a.len(), n * n);
        assert_eq!(b.len(), n * n);
        assert_eq!(c.len(), n * n);
        if n == 0 {
            return;
        }
        let workers = self.threads().min(n).max(1);
        if workers == 1 {
            kernels::gemm_nt_sub(n, a, b, c);
            return;
        }
        let barrier = Arc::new(KernelBarrier::new(self.config.barrier, workers));
        let out = SharedOut(c.as_mut_ptr());
        let rows_per = n.div_ceil(workers);
        let body = |t: usize| {
            let r0 = t * rows_per;
            let r1 = ((t + 1) * rows_per).min(n);
            if r0 < r1 {
                for i in r0..r1 {
                    for j in 0..n {
                        let mut s = 0.0;
                        for k in 0..n {
                            s += a[i * n + k] * b[j * n + k];
                        }
                        // Safety: row `i` is owned exclusively by this worker.
                        unsafe { *out.ptr().add(i * n + j) -= s };
                    }
                }
            }
            barrier.wait();
        };
        match (&self.team, &self.pool) {
            (Some(team), _) => team.parallel(workers, |ctx| body(ctx.thread_num())),
            (_, Some(pool)) => pool.run(workers, body),
            _ => unreachable!("one backend is always configured"),
        }
    }
}

impl std::fmt::Debug for BlasHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlasHandle")
            .field("threads", &self.config.threads)
            .field("threading", &self.config.threading.label())
            .field("barrier", &self.config.barrier.label())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usf_core::exec::ExecMode;
    use usf_core::runtime::Usf;

    fn check_gemm(handle: &BlasHandle) {
        let a = Matrix::pseudo_random(33, 17, 1);
        let b = Matrix::pseudo_random(17, 29, 2);
        let c = handle.gemm(&a, &b);
        let reference = Matrix::multiply_reference(&a, &b);
        assert!(
            c.max_abs_diff(&reference) < 1e-10,
            "diff {}",
            c.max_abs_diff(&reference)
        );
    }

    #[test]
    fn omp_backend_matches_reference() {
        check_gemm(&BlasHandle::new(BlasConfig::omp(3, ExecMode::Os)));
    }

    #[test]
    fn pth_backend_matches_reference() {
        check_gemm(&BlasHandle::new(BlasConfig::pth(3, ExecMode::Os)));
    }

    #[test]
    fn single_thread_matches_reference() {
        check_gemm(&BlasHandle::new(BlasConfig::omp(1, ExecMode::Os)));
    }

    #[test]
    fn all_barrier_kinds_produce_same_result() {
        for kind in [
            BarrierKind::Blocking,
            BarrierKind::BusyYield { yield_every: 16 },
            BarrierKind::BusySpin,
        ] {
            check_gemm(&BlasHandle::new(
                BlasConfig::omp(2, ExecMode::Os).barrier(kind),
            ));
        }
    }

    #[test]
    fn usf_backend_matches_reference() {
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("blas-test");
        check_gemm(&BlasHandle::new(
            BlasConfig::omp(3, ExecMode::Usf(p.clone()))
                .barrier(BarrierKind::BusyYield { yield_every: 32 }),
        ));
        check_gemm(&BlasHandle::new(BlasConfig::pth(2, ExecMode::Usf(p))));
        usf.shutdown();
    }

    #[test]
    fn gemm_nt_sub_parallel_matches_serial() {
        let n = 24;
        let a = Matrix::pseudo_random(n, n, 5);
        let b = Matrix::pseudo_random(n, n, 6);
        let c0 = Matrix::pseudo_random(n, n, 7);
        let mut serial = c0.clone();
        kernels::gemm_nt_sub(n, a.as_slice(), b.as_slice(), serial.as_mut_slice());
        let handle = BlasHandle::new(BlasConfig::omp(3, ExecMode::Os));
        let mut par = c0.clone();
        handle.gemm_nt_sub(n, a.as_slice(), b.as_slice(), par.as_mut_slice());
        assert!(par.max_abs_diff(&serial) < 1e-12);
    }

    #[test]
    fn empty_matrices_are_handled() {
        let handle = BlasHandle::new(BlasConfig::omp(2, ExecMode::Os));
        let a = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 0);
        let c = handle.gemm(&a, &b);
        assert_eq!(c.rows(), 0);
    }

    #[test]
    fn more_threads_than_rows_is_safe() {
        let handle = BlasHandle::new(BlasConfig::omp(8, ExecMode::Os));
        let a = Matrix::pseudo_random(3, 4, 9);
        let b = Matrix::pseudo_random(4, 5, 10);
        let c = handle.gemm(&a, &b);
        assert!(c.max_abs_diff(&Matrix::multiply_reference(&a, &b)) < 1e-12);
    }
}
