//! `usf-blas` — the BLAS substrate of the reproduction.
//!
//! The paper's nested workloads call dense linear-algebra kernels (dgemm for the matmul of
//! §5.3, potrf/trsm/syrk/gemm for the Cholesky of §5.4) provided by OpenBLAS or BLIS. Those
//! libraries matter to the evaluation for two scheduling-relevant reasons, both reproduced
//! here:
//!
//! 1. they parallelize each kernel with an *inner* runtime (an OpenMP team or a
//!    spawn-per-call pthread pool — the "pth" backend of Table 2), and
//! 2. they synchronize their workers with *custom busy-wait barriers* whose behaviour under
//!    oversubscription (with or without the one-line `sched_yield` fix) drives Figure 3.
//!
//! Numerical peak performance is *not* the point; the kernels are straightforward blocked
//! loops that compute correct results and generate a realistic parallel structure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod kernels;
pub mod matrix;
pub mod parallel;

pub use config::{BarrierKind, BlasConfig, BlasThreading};
pub use matrix::Matrix;
pub use parallel::BlasHandle;
