//! Configuration of the parallel BLAS backend.

use usf_core::exec::ExecMode;
use usf_runtimes::WaitPolicy;

/// How kernel workers synchronize at the end of a parallel kernel (§5.2/§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierKind {
    /// Custom busy-wait barrier without any yield — the unmodified "Original" BLAS
    /// behaviour that collapses under oversubscription (Figure 3d).
    BusySpin,
    /// Busy-wait barrier that yields every `yield_every` iterations — the paper's one-line
    /// fix applied to OpenBLAS/BLIS/MPICH ("Baseline"/"SCHED_COOP").
    BusyYield {
        /// Spin iterations between yields.
        yield_every: u32,
    },
    /// A fully blocking barrier (workers release their core while waiting).
    Blocking,
}

impl BarrierKind {
    /// Label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            BarrierKind::BusySpin => "busy-spin",
            BarrierKind::BusyYield { .. } => "busy-yield",
            BarrierKind::Blocking => "blocking",
        }
    }
}

impl Default for BarrierKind {
    fn default() -> Self {
        BarrierKind::BusyYield { yield_every: 64 }
    }
}

/// Which inner runtime parallelizes the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlasThreading {
    /// A persistent OpenMP-like worker team (the gomp/libomp backends of Table 2).
    OpenMpLike,
    /// A spawn-per-call pthread pool (the BLIS "pth" backend of Table 2): threads are
    /// created and destroyed for every kernel invocation.
    PthreadPerCall,
}

impl BlasThreading {
    /// Label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            BlasThreading::OpenMpLike => "omp",
            BlasThreading::PthreadPerCall => "pth",
        }
    }
}

/// Full configuration of a [`crate::BlasHandle`].
#[derive(Debug, Clone)]
pub struct BlasConfig {
    /// Number of inner threads per kernel call.
    pub threads: usize,
    /// Inner-runtime flavour.
    pub threading: BlasThreading,
    /// End-of-kernel synchronization behaviour.
    pub barrier: BarrierKind,
    /// Wait policy of the persistent team (ignored for the spawn-per-call backend).
    pub wait_policy: WaitPolicy,
    /// Thread backend: plain OS threads (baseline) or USF workers (SCHED_COOP).
    pub exec: ExecMode,
}

impl BlasConfig {
    /// An OpenMP-like configuration with `threads` workers on the given backend.
    pub fn omp(threads: usize, exec: ExecMode) -> Self {
        BlasConfig {
            threads,
            threading: BlasThreading::OpenMpLike,
            barrier: BarrierKind::default(),
            wait_policy: WaitPolicy::Passive,
            exec,
        }
    }

    /// A spawn-per-call ("pth") configuration with `threads` workers on the given backend.
    pub fn pth(threads: usize, exec: ExecMode) -> Self {
        BlasConfig {
            threading: BlasThreading::PthreadPerCall,
            ..BlasConfig::omp(threads, exec)
        }
    }

    /// Set the barrier kind.
    pub fn barrier(mut self, barrier: BarrierKind) -> Self {
        self.barrier = barrier;
        self
    }

    /// Set the team wait policy.
    pub fn wait_policy(mut self, policy: WaitPolicy) -> Self {
        self.wait_policy = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_labels() {
        let c = BlasConfig::omp(4, ExecMode::Os);
        assert_eq!(c.threads, 4);
        assert_eq!(c.threading.label(), "omp");
        assert_eq!(c.barrier.label(), "busy-yield");
        let c = BlasConfig::pth(2, ExecMode::Os).barrier(BarrierKind::BusySpin);
        assert_eq!(c.threading.label(), "pth");
        assert_eq!(c.barrier.label(), "busy-spin");
        assert_eq!(BarrierKind::Blocking.label(), "blocking");
    }
}
