//! Serial tile kernels: the level-3 BLAS / LAPACK operations the workloads need.
//!
//! All kernels operate on row-major `f64` slices of dimension `n × n` (tiles) or explicit
//! `m × k × n` shapes for gemm, and are written as straightforward register-blocked loops.

/// `C += A · B` where `A` is `m×k`, `B` is `k×n` and `C` is `m×n`, all row-major.
pub fn gemm_acc(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for j in 0..n {
                c_row[j] += aik * b_row[j];
            }
        }
    }
}

/// `C -= A · Bᵀ` for square `n×n` tiles (the update used by blocked Cholesky's gemm step).
pub fn gemm_nt_sub(n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n * n);
    debug_assert_eq!(c.len(), n * n);
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += a[i * n + k] * b[j * n + k];
            }
            c[i * n + j] -= s;
        }
    }
}

/// `C -= A · Aᵀ`, updating only the lower triangle (the syrk step of blocked Cholesky).
pub fn syrk_ln_sub(n: usize, a: &[f64], c: &mut [f64]) {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(c.len(), n * n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = 0.0;
            for k in 0..n {
                s += a[i * n + k] * a[j * n + k];
            }
            c[i * n + j] -= s;
        }
    }
}

/// In-place Cholesky factorization of a single `n×n` tile: `A = L·Lᵀ`, lower triangle of `A`
/// replaced by `L` (the dpotrf step). Returns `Err(i)` if the matrix is not positive
/// definite at pivot `i`.
pub fn potrf(n: usize, a: &mut [f64]) -> Result<(), usize> {
    debug_assert_eq!(a.len(), n * n);
    for j in 0..n {
        let mut d = a[j * n + j];
        for k in 0..j {
            d -= a[j * n + k] * a[j * n + k];
        }
        if d <= 0.0 {
            return Err(j);
        }
        let d = d.sqrt();
        a[j * n + j] = d;
        for i in (j + 1)..n {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= a[i * n + k] * a[j * n + k];
            }
            a[i * n + j] = s / d;
        }
        // Zero the strictly-upper part for cleanliness.
        for i in 0..j {
            a[i * n + j] = 0.0;
        }
    }
    Ok(())
}

/// Triangular solve `B := B · L⁻ᵀ` where `L` is the lower-triangular factor of a diagonal
/// tile (the dtrsm step of blocked right-looking Cholesky: panel update below the diagonal).
pub fn trsm_right_lower_transpose(n: usize, l: &[f64], b: &mut [f64]) {
    debug_assert_eq!(l.len(), n * n);
    debug_assert_eq!(b.len(), n * n);
    // Solve X · Lᵀ = B row by row: for each row r of B, forward-substitute.
    for r in 0..n {
        for j in 0..n {
            let mut s = b[r * n + j];
            for k in 0..j {
                s -= b[r * n + k] * l[j * n + k];
            }
            b[r * n + j] = s / l[j * n + j];
        }
    }
}

/// Multiply-accumulate throughput helper: number of floating-point operations of a gemm of
/// the given shape (used to report MOPS like the paper).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn gemm_acc_matches_reference() {
        let (m, k, n) = (7, 5, 9);
        let a = Matrix::pseudo_random(m, k, 1);
        let b = Matrix::pseudo_random(k, n, 2);
        let mut c = Matrix::zeros(m, n);
        gemm_acc(m, k, n, a.as_slice(), b.as_slice(), c.as_mut_slice());
        let reference = Matrix::multiply_reference(&a, &b);
        assert!(c.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn gemm_acc_accumulates() {
        let n = 4;
        let a = Matrix::identity(n);
        let b = Matrix::pseudo_random(n, n, 3);
        let mut c = b.clone();
        gemm_acc(n, n, n, a.as_slice(), b.as_slice(), c.as_mut_slice());
        // C was B, plus I*B = 2B.
        for i in 0..n {
            for j in 0..n {
                assert!((c[(i, j)] - 2.0 * b[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn potrf_factorizes_spd_matrix() {
        let n = 8;
        let a = Matrix::spd(n, 7);
        let mut f = a.clone();
        potrf(n, f.as_mut_slice()).expect("SPD matrix must factorize");
        // Check L·Lᵀ == A.
        let mut rebuilt = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..=i.min(j) {
                    s += f[(i, k)] * f[(j, k)];
                }
                rebuilt[(i, j)] = s;
            }
        }
        assert!(
            rebuilt.max_abs_diff(&a) < 1e-8,
            "diff {}",
            rebuilt.max_abs_diff(&a)
        );
    }

    #[test]
    fn potrf_rejects_non_spd() {
        let n = 3;
        let mut a = vec![0.0; n * n];
        a[0] = -1.0;
        assert_eq!(potrf(n, &mut a), Err(0));
    }

    #[test]
    fn trsm_solves_triangular_system() {
        let n = 6;
        // L: lower triangular with positive diagonal.
        let mut l = Matrix::pseudo_random(n, n, 11);
        for i in 0..n {
            for j in (i + 1)..n {
                l[(i, j)] = 0.0;
            }
            l[(i, i)] = 2.0 + l[(i, i)].abs();
        }
        let x_true = Matrix::pseudo_random(n, n, 12);
        // B = X_true · Lᵀ
        let b0 = Matrix::multiply_reference(&x_true, &l.transpose());
        let mut b = b0.clone();
        trsm_right_lower_transpose(n, l.as_slice(), b.as_mut_slice());
        assert!(
            b.max_abs_diff(&x_true) < 1e-9,
            "diff {}",
            b.max_abs_diff(&x_true)
        );
    }

    #[test]
    fn syrk_matches_explicit_product() {
        let n = 5;
        let a = Matrix::pseudo_random(n, n, 21);
        let c0 = Matrix::spd(n, 22);
        let mut c = c0.clone();
        syrk_ln_sub(n, a.as_slice(), c.as_mut_slice());
        let aat = Matrix::multiply_reference(&a, &a.transpose());
        for i in 0..n {
            for j in 0..=i {
                let expected = c0[(i, j)] - aat[(i, j)];
                assert!((c[(i, j)] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gemm_nt_sub_matches_explicit_product() {
        let n = 5;
        let a = Matrix::pseudo_random(n, n, 31);
        let b = Matrix::pseudo_random(n, n, 32);
        let c0 = Matrix::pseudo_random(n, n, 33);
        let mut c = c0.clone();
        gemm_nt_sub(n, a.as_slice(), b.as_slice(), c.as_mut_slice());
        let abt = Matrix::multiply_reference(&a, &b.transpose());
        for i in 0..n {
            for j in 0..n {
                let expected = c0[(i, j)] - abt[(i, j)];
                assert!((c[(i, j)] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn flops_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }
}
