//! Simulated runtime-composition Cholesky — the workload behind Table 2 (§5.4).
//!
//! Table 2 fixes the problem (32768², task size 1024) and varies the runtime composition
//! (outer runtime, inner runtime, BLAS implementation) and the degree of parallelism
//! (Mild 8×8, Medium 14×14, High 28×28 threads). The scheduling-relevant differences between
//! the compositions are reproduced here:
//!
//! * every composition nests an inner team inside each outer task (oversubscription grows
//!   as outer×inner);
//! * the **pth** inner runtime (BLIS pthread backend) creates and destroys its threads at
//!   every kernel call, paying a per-call thread-creation cost under the baseline scheduler;
//!   under USF the thread cache absorbs most of that cost (§4.3.1), which is why the pth
//!   rows show the largest speedups;
//! * the other compositions (gomp/libomp/TBB) reuse their threads, so they only differ in
//!   minor constant overheads.

use usf_simsched::{
    BarrierWaitKind, Engine, Machine, Program, ProgramRef, SchedModel, SimReport, SimTime,
};

/// Inner-runtime flavour of a Table 2 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InnerRuntime {
    /// A persistent OpenMP team (LLVM or GNU).
    OpenMp,
    /// The BLIS pthread backend: threads created and destroyed per kernel call.
    PthreadPerCall,
}

/// One runtime composition (a row of Table 2).
#[derive(Debug, Clone)]
pub struct Composition {
    /// Outer runtime label (gnu, tbb — cosmetic, they share the scheduling behaviour).
    pub outer: &'static str,
    /// Inner runtime label (llvm, gnu, pth).
    pub inner: &'static str,
    /// BLAS label (opb, blis — cosmetic).
    pub blas: &'static str,
    /// Scheduling-relevant flavour of the inner runtime.
    pub inner_kind: InnerRuntime,
}

impl Composition {
    /// The five compositions of Table 2, in row order.
    pub fn table2_rows() -> Vec<Composition> {
        vec![
            Composition {
                outer: "gnu",
                inner: "llvm",
                blas: "opb",
                inner_kind: InnerRuntime::OpenMp,
            },
            Composition {
                outer: "tbb",
                inner: "llvm",
                blas: "opb",
                inner_kind: InnerRuntime::OpenMp,
            },
            Composition {
                outer: "tbb",
                inner: "gnu",
                blas: "blis",
                inner_kind: InnerRuntime::OpenMp,
            },
            Composition {
                outer: "tbb",
                inner: "pth",
                blas: "blis",
                inner_kind: InnerRuntime::PthreadPerCall,
            },
            Composition {
                outer: "gnu",
                inner: "pth",
                blas: "blis",
                inner_kind: InnerRuntime::PthreadPerCall,
            },
        ]
    }

    /// Row label, e.g. `tbb/pth/blis`.
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.outer, self.inner, self.blas)
    }
}

/// Degrees of parallelism evaluated in Table 2 (outer × inner threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// 8 × 8 threads (1.14 threads per core on the 56-core socket).
    Mild,
    /// 14 × 14 threads (3.5 threads per core).
    Medium,
    /// 28 × 28 threads (14 threads per core).
    High,
}

impl Parallelism {
    /// All degrees, in column order.
    pub const ALL: [Parallelism; 3] = [Parallelism::Mild, Parallelism::Medium, Parallelism::High];

    /// `(outer, inner)` thread counts.
    pub fn threads(&self) -> (usize, usize) {
        match self {
            Parallelism::Mild => (8, 8),
            Parallelism::Medium => (14, 14),
            Parallelism::High => (28, 28),
        }
    }

    /// Column label.
    pub fn label(&self) -> &'static str {
        match self {
            Parallelism::Mild => "Mild",
            Parallelism::Medium => "Medium",
            Parallelism::High => "High",
        }
    }
}

/// Which scheduler the composition runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CholeskyScheduler {
    /// The Linux fair baseline (with the yield-patched barriers of §5.2).
    Baseline,
    /// USF's SCHED_COOP (with the thread cache).
    SchedCoop,
}

/// Configuration of one Table 2 cell.
#[derive(Debug, Clone)]
pub struct SimCholeskyConfig {
    /// Runtime composition (row).
    pub composition: Composition,
    /// Degree of parallelism (column).
    pub parallelism: Parallelism,
    /// Scheduler variant.
    pub scheduler: CholeskyScheduler,
    /// Simulated machine (56-core socket by default).
    pub machine: Machine,
    /// Tile size (1024 in the paper).
    pub task_size: usize,
    /// Assumed per-core FLOP rate.
    pub flops_per_core: f64,
    /// Tasks per outer worker in the simulated steady-state window.
    pub tasks_per_worker: usize,
    /// Thread create+destroy cost per inner worker for the pth backend under the baseline
    /// scheduler (clone, stack setup, wake-up and teardown noise).
    pub pth_spawn_cost: SimTime,
    /// Residual per-worker cost when the USF thread cache serves the spawn.
    pub cached_spawn_cost: SimTime,
    /// Busy-wait yield period of the patched barriers.
    pub yield_slice: SimTime,
}

impl SimCholeskyConfig {
    /// A Table 2 cell with the defaults used by the bench harness.
    pub fn new(
        composition: Composition,
        parallelism: Parallelism,
        scheduler: CholeskyScheduler,
    ) -> Self {
        SimCholeskyConfig {
            composition,
            parallelism,
            scheduler,
            machine: Machine::marenostrum5_socket(),
            task_size: 1024,
            flops_per_core: 40e9,
            tasks_per_worker: 3,
            pth_spawn_cost: SimTime::from_micros(120),
            cached_spawn_cost: SimTime::from_micros(8),
            yield_slice: SimTime::from_micros(200),
        }
    }
}

/// Result of one Table 2 cell.
#[derive(Debug, Clone)]
pub struct SimCholeskyResult {
    /// Simulated throughput in MFLOP/s.
    pub mflops: f64,
    /// Simulated makespan.
    pub makespan: SimTime,
    /// Full simulator report.
    pub report: SimReport,
}

/// Run one Table 2 cell.
pub fn run_sim_cholesky(cfg: &SimCholeskyConfig) -> SimCholeskyResult {
    let (outer, inner) = cfg.parallelism.threads();
    let ts = cfg.task_size;
    // A trailing-matrix gemm update on a task_size tile.
    let task_flops = 2.0 * (ts as f64).powi(3);
    let per_thread = SimTime::from_secs_f64(task_flops / inner as f64 / cfg.flops_per_core);

    let (model, barrier_kind) = match cfg.scheduler {
        CholeskyScheduler::Baseline => (
            SchedModel::Fair,
            BarrierWaitKind::SpinYield {
                slice: cfg.yield_slice,
            },
        ),
        CholeskyScheduler::SchedCoop => (
            SchedModel::coop_default(),
            BarrierWaitKind::SpinYield {
                slice: cfg.yield_slice,
            },
        ),
    };
    // Per-call thread management cost of the inner runtime.
    let spawn_cost = match (cfg.composition.inner_kind, cfg.scheduler) {
        (InnerRuntime::PthreadPerCall, CholeskyScheduler::Baseline) => cfg.pth_spawn_cost,
        (InnerRuntime::PthreadPerCall, CholeskyScheduler::SchedCoop) => cfg.cached_spawn_cost,
        // Persistent teams only pay a small wake-up cost either way.
        (InnerRuntime::OpenMp, _) => cfg.cached_spawn_cost,
    };

    let mut engine = Engine::new(cfg.machine.clone(), &model);
    let process = engine.add_process("cholesky", 1.0);
    engine.set_max_sim_time(SimTime::from_secs(3600));

    let mut barrier_id: u64 = 1;
    for w in 0..outer {
        let mut prog = Program::new(format!("outer-{w}"));
        for _ in 0..cfg.tasks_per_worker.max(1) {
            let id = barrier_id;
            barrier_id += 1;
            if inner > 1 {
                let child = Program::new("inner")
                    .compute(spawn_cost)
                    .compute(per_thread)
                    .barrier(id, inner, barrier_kind)
                    .build();
                prog = prog
                    .spawn(ProgramRef::clone(&child), process, inner - 1)
                    .compute(per_thread)
                    .barrier(id, inner, barrier_kind)
                    .join_children();
            } else {
                prog = prog.compute(per_thread);
            }
        }
        engine.add_thread(process, prog.build());
    }

    let report = engine.run();
    let total_flops = task_flops * (outer * cfg.tasks_per_worker.max(1)) as f64;
    let secs = report.makespan.as_secs_f64().max(1e-9);
    let mflops = if report.deadlocked {
        0.0
    } else {
        total_flops / secs / 1e6
    };
    SimCholeskyResult {
        mflops,
        makespan: report.makespan,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(
        composition: Composition,
        parallelism: Parallelism,
        scheduler: CholeskyScheduler,
    ) -> SimCholeskyResult {
        let mut cfg = SimCholeskyConfig::new(composition, parallelism, scheduler);
        cfg.machine = Machine::small(8);
        cfg.task_size = 256;
        cfg.tasks_per_worker = 2;
        run_sim_cholesky(&cfg)
    }

    #[test]
    fn table2_has_five_rows_and_three_columns() {
        assert_eq!(Composition::table2_rows().len(), 5);
        assert_eq!(Parallelism::ALL.len(), 3);
        assert_eq!(Parallelism::High.threads(), (28, 28));
        assert_eq!(Composition::table2_rows()[3].label(), "tbb/pth/blis");
    }

    #[test]
    fn sched_coop_speeds_up_pth_composition_most() {
        let rows = Composition::table2_rows();
        let omp = rows[1].clone(); // tbb/llvm/opb
        let pth = rows[3].clone(); // tbb/pth/blis
        let speedup = |c: &Composition| {
            let base = quick(c.clone(), Parallelism::High, CholeskyScheduler::Baseline).mflops;
            let coop = quick(c.clone(), Parallelism::High, CholeskyScheduler::SchedCoop).mflops;
            coop / base.max(1e-9)
        };
        let s_omp = speedup(&omp);
        let s_pth = speedup(&pth);
        assert!(
            s_pth > 1.0,
            "SCHED_COOP must beat the baseline for the pth backend (got {s_pth:.2})"
        );
        assert!(
            s_pth > s_omp,
            "the thread-churning pth backend must benefit more than the persistent team ({s_pth:.2} vs {s_omp:.2})"
        );
    }

    #[test]
    fn heavier_oversubscription_lowers_baseline_throughput() {
        let row = Composition::table2_rows()[0].clone();
        let mild = quick(row.clone(), Parallelism::Mild, CholeskyScheduler::Baseline).mflops;
        let high = quick(row, Parallelism::High, CholeskyScheduler::Baseline).mflops;
        assert!(mild > 0.0 && high > 0.0);
        assert!(
            high < mild,
            "per-configuration throughput must drop as oversubscription grows (mild {mild:.0} vs high {high:.0})"
        );
    }

    #[test]
    fn results_are_deterministic() {
        let row = Composition::table2_rows()[2].clone();
        let a = quick(
            row.clone(),
            Parallelism::Medium,
            CholeskyScheduler::SchedCoop,
        );
        let b = quick(row, Parallelism::Medium, CholeskyScheduler::SchedCoop);
        assert_eq!(a.makespan, b.makespan);
    }
}
