//! Real-execution blocked Cholesky factorization (§5.4).
//!
//! The right-looking tiled algorithm: for every panel `k`, factorize the diagonal tile
//! (`potrf`), solve the tiles below it (`trsm`), and update the trailing matrix (`syrk` on
//! diagonal tiles, `gemm` elsewhere). The outer task runtime tracks the tile dependencies;
//! the gemm updates call the parallel BLAS backend (the inner runtime), reproducing the
//! runtime-composition structure of Table 2.

use std::sync::Arc;
use std::time::{Duration, Instant};
use usf_blas::{BarrierKind, BlasConfig, BlasHandle, BlasThreading, Matrix};
use usf_core::exec::ExecMode;
use usf_core::sync::Mutex;
use usf_runtimes::taskrt::{DataKey, TaskDeps, TaskRuntime, TaskRuntimeConfig};

/// Configuration of a real-execution blocked Cholesky run.
#[derive(Debug, Clone)]
pub struct CholeskyConfig {
    /// Matrix dimension `N` (must be a multiple of `tile_size`).
    pub matrix_size: usize,
    /// Tile dimension.
    pub tile_size: usize,
    /// Outer task-runtime workers.
    pub outer_workers: usize,
    /// Inner (BLAS) threads per gemm update.
    pub inner_threads: usize,
    /// Inner runtime flavour ("omp" team or "pth" spawn-per-call).
    pub inner_threading: BlasThreading,
    /// End-of-kernel barrier behaviour.
    pub barrier: BarrierKind,
    /// Thread backend.
    pub exec: ExecMode,
}

impl CholeskyConfig {
    /// A small configuration suitable for tests and examples.
    pub fn small(exec: ExecMode) -> Self {
        CholeskyConfig {
            matrix_size: 128,
            tile_size: 32,
            outer_workers: 2,
            inner_threads: 2,
            inner_threading: BlasThreading::OpenMpLike,
            barrier: BarrierKind::BusyYield { yield_every: 64 },
            exec,
        }
    }
}

/// Result of a Cholesky run.
#[derive(Debug, Clone)]
pub struct CholeskyResult {
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Performance in MFLOP/s (`N³/3` useful flops).
    pub mflops: f64,
    /// Number of outer tasks executed.
    pub tasks: u64,
    /// Maximum absolute error of `L·Lᵀ` vs. the input (when verification was requested).
    pub max_error: Option<f64>,
}

type Tiles = Arc<Vec<Mutex<Vec<f64>>>>;

fn split_into_tiles(a: &Matrix, ts: usize) -> Tiles {
    let nb = a.rows() / ts;
    let mut tiles = Vec::with_capacity(nb * nb);
    for bi in 0..nb {
        for bj in 0..nb {
            let mut t = vec![0.0; ts * ts];
            for i in 0..ts {
                for j in 0..ts {
                    t[i * ts + j] = a[(bi * ts + i, bj * ts + j)];
                }
            }
            tiles.push(Mutex::new(t));
        }
    }
    Arc::new(tiles)
}

/// A set-up blocked Cholesky: the SPD input is generated once, then
/// [`CholeskyInstance::factorize_once`] runs complete factorizations on fresh tile copies —
/// the reusable unit of work driven by the scenario engine and [`run_cholesky`].
pub struct CholeskyInstance {
    cfg: CholeskyConfig,
    a: Matrix,
    blas_cfg: BlasConfig,
    nb: usize,
    ts: usize,
    last_tiles: Option<Tiles>,
    tasks: u64,
}

impl CholeskyInstance {
    /// Set up the workload: generate the SPD matrix (the part shared by all units).
    pub fn new(cfg: &CholeskyConfig) -> Self {
        assert!(
            cfg.matrix_size % cfg.tile_size == 0,
            "tile size must divide the matrix size"
        );
        let n = cfg.matrix_size;
        let ts = cfg.tile_size;
        let a = Matrix::spd(n, 9);
        let blas_cfg = BlasConfig {
            threads: cfg.inner_threads,
            threading: cfg.inner_threading,
            barrier: cfg.barrier,
            wait_policy: usf_runtimes::WaitPolicy::Passive,
            exec: cfg.exec.clone(),
        };
        CholeskyInstance {
            cfg: cfg.clone(),
            a,
            blas_cfg,
            nb: n / ts,
            ts,
            last_tiles: None,
            tasks: 0,
        }
    }

    /// Run one complete factorization (one unit) on a fresh copy of the input tiles.
    pub fn factorize_once(&mut self) {
        let (nb, ts) = (self.nb, self.ts);
        let tiles = split_into_tiles(&self.a, ts);
        let blas_cfg = &self.blas_cfg;
        let key = |i: usize, j: usize| DataKey::index2(11, i, j);
        let rt = TaskRuntime::new(
            TaskRuntimeConfig::new(self.cfg.outer_workers, self.cfg.exec.clone())
                .name("chol-outer"),
        );
        for k in 0..nb {
            // potrf on the diagonal tile.
            {
                let tiles = Arc::clone(&tiles);
                rt.submit(TaskDeps::none().inout(key(k, k)), move || {
                    let mut d = tiles[k * nb + k].lock();
                    usf_blas::kernels::potrf(ts, &mut d).expect("matrix must stay SPD");
                });
                self.tasks += 1;
            }
            // trsm for the panel below the diagonal.
            for i in (k + 1)..nb {
                let tiles = Arc::clone(&tiles);
                rt.submit(
                    TaskDeps::none().input(key(k, k)).inout(key(i, k)),
                    move || {
                        let l = tiles[k * nb + k].lock().clone();
                        let mut b = tiles[i * nb + k].lock();
                        usf_blas::kernels::trsm_right_lower_transpose(ts, &l, &mut b);
                    },
                );
                self.tasks += 1;
            }
            // Trailing-matrix update.
            for i in (k + 1)..nb {
                // syrk on the diagonal of the trailing matrix.
                {
                    let tiles = Arc::clone(&tiles);
                    rt.submit(
                        TaskDeps::none().input(key(i, k)).inout(key(i, i)),
                        move || {
                            let a_ik = tiles[i * nb + k].lock().clone();
                            let mut c = tiles[i * nb + i].lock();
                            usf_blas::kernels::syrk_ln_sub(ts, &a_ik, &mut c);
                        },
                    );
                    self.tasks += 1;
                }
                // gemm updates below the diagonal — this is the kernel that opens the inner
                // parallel region (the BLAS call of Listing 2 / Table 2).
                for j in (k + 1)..i {
                    let tiles = Arc::clone(&tiles);
                    let blas_cfg = blas_cfg.clone();
                    rt.submit(
                        TaskDeps::none()
                            .input(key(i, k))
                            .input(key(j, k))
                            .inout(key(i, j)),
                        move || {
                            let blas = BlasHandle::new(blas_cfg);
                            let a_ik = tiles[i * nb + k].lock().clone();
                            let a_jk = tiles[j * nb + k].lock().clone();
                            let mut c = tiles[i * nb + j].lock();
                            blas.gemm_nt_sub(ts, &a_ik, &a_jk, &mut c);
                        },
                    );
                    self.tasks += 1;
                }
            }
        }
        rt.taskwait();
        self.last_tiles = Some(tiles);
    }

    /// Outer tasks executed so far across all units.
    pub fn tasks_executed(&self) -> u64 {
        self.tasks
    }

    /// Maximum absolute error of `L·Lᵀ` of the last factorization vs. the input (`None`
    /// before the first unit; small sizes only).
    pub fn verify_last(&self) -> Option<f64> {
        let tiles = self.last_tiles.as_ref()?;
        let (nb, ts) = (self.nb, self.ts);
        let n = self.cfg.matrix_size;
        // Rebuild L·Lᵀ from the lower-triangular tiles and compare with A.
        let mut l = Matrix::zeros(n, n);
        for bi in 0..nb {
            for bj in 0..=bi {
                let t = tiles[bi * nb + bj].lock();
                for i in 0..ts {
                    for j in 0..ts {
                        let (gi, gj) = (bi * ts + i, bj * ts + j);
                        if gj <= gi {
                            l[(gi, gj)] = t[i * ts + j];
                        }
                    }
                }
            }
        }
        let rebuilt = Matrix::multiply_reference(&l, &l.transpose());
        let mut err: f64 = 0.0;
        for i in 0..n {
            for j in 0..=i {
                err = err.max((rebuilt[(i, j)] - self.a[(i, j)]).abs());
            }
        }
        Some(err)
    }
}

/// Run the blocked Cholesky factorization.
pub fn run_cholesky(cfg: &CholeskyConfig) -> CholeskyResult {
    run_cholesky_impl(cfg, false)
}

/// Run the blocked Cholesky and verify `L·Lᵀ ≈ A` (small sizes only).
pub fn run_cholesky_verified(cfg: &CholeskyConfig) -> CholeskyResult {
    run_cholesky_impl(cfg, true)
}

fn run_cholesky_impl(cfg: &CholeskyConfig, verify: bool) -> CholeskyResult {
    let mut inst = CholeskyInstance::new(cfg);
    let start = Instant::now();
    inst.factorize_once();
    let elapsed = start.elapsed();
    let flops = (cfg.matrix_size as f64).powi(3) / 3.0;
    let mflops = flops / elapsed.as_secs_f64() / 1e6;
    let max_error = if verify { inst.verify_last() } else { None };

    CholeskyResult {
        elapsed,
        mflops,
        tasks: inst.tasks_executed(),
        max_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usf_core::runtime::Usf;

    #[test]
    fn os_baseline_cholesky_is_correct() {
        let cfg = CholeskyConfig::small(ExecMode::Os);
        let r = run_cholesky_verified(&cfg);
        assert!(r.max_error.unwrap() < 1e-6, "error {:?}", r.max_error);
        assert!(r.tasks > 0);
        assert!(r.mflops > 0.0);
    }

    #[test]
    fn usf_sched_coop_cholesky_is_correct() {
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("cholesky");
        let cfg = CholeskyConfig::small(ExecMode::Usf(p));
        let r = run_cholesky_verified(&cfg);
        assert!(r.max_error.unwrap() < 1e-6, "error {:?}", r.max_error);
        assert!(usf.metrics().attaches > 0);
        usf.shutdown();
    }

    #[test]
    fn pth_inner_backend_is_correct() {
        let mut cfg = CholeskyConfig::small(ExecMode::Os);
        cfg.inner_threading = BlasThreading::PthreadPerCall;
        cfg.matrix_size = 96;
        cfg.tile_size = 32;
        let r = run_cholesky_verified(&cfg);
        assert!(r.max_error.unwrap() < 1e-6);
    }

    #[test]
    fn task_count_matches_formula() {
        let cfg = CholeskyConfig {
            matrix_size: 128,
            tile_size: 32,
            ..CholeskyConfig::small(ExecMode::Os)
        };
        let r = run_cholesky(&cfg);
        let nb = 4u64;
        // potrf: nb, trsm: nb(nb-1)/2, syrk: nb(nb-1)/2, gemm: nb(nb-1)(nb-2)/6
        let expected = nb + nb * (nb - 1) / 2 + nb * (nb - 1) / 2 + nb * (nb - 1) * (nb - 2) / 6;
        assert_eq!(r.tasks, expected);
    }
}
