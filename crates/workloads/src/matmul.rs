//! Real-execution nested matmul (§5.3, Listing 2).
//!
//! The matrix is blocked into `TS × TS` tiles; an *outer* task runtime creates one task per
//! `(k, i, j)` tile update with the Listing 2 dependencies (`inout C[i][j]`, `in A[i][k]`,
//! `in B[k][j]`), and each task calls a parallel BLAS gemm that opens an *inner* team of
//! `inner_threads` workers — exactly the composition that multiplies thread counts and
//! oversubscribes the node. Running it with [`usf_core::ExecMode::Os`] gives the baseline;
//! [`usf_core::ExecMode::Usf`] gives SCHED_COOP.

use std::sync::Arc;
use std::time::{Duration, Instant};
use usf_blas::{BarrierKind, BlasConfig, BlasHandle, BlasThreading, Matrix};
use usf_core::exec::ExecMode;
use usf_core::sync::Mutex;
use usf_runtimes::taskrt::{DataKey, TaskDeps, TaskRuntime, TaskRuntimeConfig};

/// Configuration of a real-execution nested matmul run.
#[derive(Debug, Clone)]
pub struct MatmulConfig {
    /// Matrix dimension `N` (the paper uses 32768; tests use small sizes).
    pub matrix_size: usize,
    /// Tile dimension `TS`.
    pub task_size: usize,
    /// Inner (BLAS) threads per task.
    pub inner_threads: usize,
    /// Outer task-runtime workers.
    pub outer_workers: usize,
    /// Inner runtime flavour (OpenMP-like team or spawn-per-call pool).
    pub inner_threading: BlasThreading,
    /// End-of-kernel barrier behaviour of the inner runtime.
    pub barrier: BarrierKind,
    /// Thread backend for both runtimes.
    pub exec: ExecMode,
    /// Number of complete `C = A·B` iterations to run.
    pub iterations: usize,
}

impl MatmulConfig {
    /// A small configuration suitable for tests and examples.
    pub fn small(exec: ExecMode) -> Self {
        MatmulConfig {
            matrix_size: 128,
            task_size: 32,
            inner_threads: 2,
            outer_workers: 2,
            inner_threading: BlasThreading::OpenMpLike,
            barrier: BarrierKind::BusyYield { yield_every: 64 },
            exec,
            iterations: 1,
        }
    }
}

/// Result of a matmul run.
#[derive(Debug, Clone)]
pub struct MatmulResult {
    /// Wall-clock time of all iterations.
    pub elapsed: Duration,
    /// Performance in MFLOP/s (the paper's MOPS/s axis).
    pub mflops: f64,
    /// Number of outer tasks executed.
    pub tasks: u64,
    /// Maximum absolute error of `C` vs. the reference product (only computed when
    /// `verify` was requested; `None` otherwise).
    pub max_error: Option<f64>,
}

/// Tiled matrix shared across outer tasks: `nb × nb` tiles of `ts × ts` elements. Read-only
/// inputs use plain `Arc`s; the output tiles are protected by USF mutexes (uncontended in a
/// correct dependency graph, but they keep the code safe even if a policy misbehaves).
struct TiledMatrix {
    nb: usize,
    tiles: Vec<Arc<Vec<f64>>>,
}

impl TiledMatrix {
    fn from_matrix(m: &Matrix, ts: usize) -> Self {
        let nb = m.rows() / ts;
        let mut tiles = Vec::with_capacity(nb * nb);
        for bi in 0..nb {
            for bj in 0..nb {
                let mut t = vec![0.0; ts * ts];
                for i in 0..ts {
                    for j in 0..ts {
                        t[i * ts + j] = m[(bi * ts + i, bj * ts + j)];
                    }
                }
                tiles.push(Arc::new(t));
            }
        }
        TiledMatrix { nb, tiles }
    }

    fn tile(&self, i: usize, j: usize) -> Arc<Vec<f64>> {
        Arc::clone(&self.tiles[i * self.nb + j])
    }
}

fn output_tiles(nb: usize, ts: usize) -> Arc<Vec<Mutex<Vec<f64>>>> {
    Arc::new(
        (0..nb * nb)
            .map(|_| Mutex::new(vec![0.0; ts * ts]))
            .collect(),
    )
}

/// A set-up nested matmul: the inputs are tiled once, then [`MatmulInstance::run_once`]
/// executes complete `C = A·B` products — the reusable *unit of work* the scenario engine
/// (and [`run_matmul`]) drive. Extracting this from the old inlined driver is what lets
/// the same workload run under any executor instead of only the figure binary.
pub struct MatmulInstance {
    cfg: MatmulConfig,
    a: Matrix,
    b: Matrix,
    a_tiles: Arc<TiledMatrix>,
    b_tiles: Arc<TiledMatrix>,
    blas_cfg: BlasConfig,
    nb: usize,
    ts: usize,
    last_c: Option<Arc<Vec<Mutex<Vec<f64>>>>>,
    tasks: u64,
}

impl MatmulInstance {
    /// Set up the workload: generate the inputs and tile them (the part that must not be
    /// re-done per unit).
    pub fn new(cfg: &MatmulConfig) -> Self {
        assert!(
            cfg.matrix_size % cfg.task_size == 0,
            "task size must divide the matrix size"
        );
        let n = cfg.matrix_size;
        let ts = cfg.task_size;
        let a = Matrix::pseudo_random(n, n, 1);
        let b = Matrix::pseudo_random(n, n, 2);
        let a_tiles = Arc::new(TiledMatrix::from_matrix(&a, ts));
        let b_tiles = Arc::new(TiledMatrix::from_matrix(&b, ts));
        let blas_cfg = BlasConfig {
            threads: cfg.inner_threads,
            threading: cfg.inner_threading,
            barrier: cfg.barrier,
            wait_policy: usf_runtimes::WaitPolicy::Passive,
            exec: cfg.exec.clone(),
        };
        MatmulInstance {
            cfg: cfg.clone(),
            a,
            b,
            a_tiles,
            b_tiles,
            blas_cfg,
            nb: n / ts,
            ts,
            last_c: None,
            tasks: 0,
        }
    }

    /// Run one complete `C = A·B` product (one unit): an outer task runtime with the
    /// Listing 2 dependencies, each task opening its inner BLAS parallel region.
    pub fn run_once(&mut self) {
        let (nb, ts) = (self.nb, self.ts);
        let c_tiles = output_tiles(nb, ts);
        let rt = TaskRuntime::new(
            TaskRuntimeConfig::new(self.cfg.outer_workers, self.cfg.exec.clone())
                .name("matmul-outer"),
        );
        for k in 0..nb {
            for i in 0..nb {
                for j in 0..nb {
                    let a_blk = self.a_tiles.tile(i, k);
                    let b_blk = self.b_tiles.tile(k, j);
                    let c_all = Arc::clone(&c_tiles);
                    let blas_cfg = self.blas_cfg.clone();
                    let deps = TaskDeps::none()
                        .inout(DataKey::index2(3, i, j))
                        .input(DataKey::index2(1, i, k))
                        .input(DataKey::index2(2, k, j));
                    let idx = i * nb + j;
                    rt.submit(deps, move || {
                        // Each task opens its own inner parallel region, the nesting pattern
                        // of Listing 2 (an OpenMP region inside the BLAS call).
                        let blas = BlasHandle::new(blas_cfg);
                        let mut c_blk = c_all[idx].lock();
                        blas.gemm_acc(ts, ts, ts, &a_blk, &b_blk, &mut c_blk);
                    });
                    self.tasks += 1;
                }
            }
        }
        rt.taskwait();
        self.last_c = Some(c_tiles);
    }

    /// Outer tasks executed so far across all units.
    pub fn tasks_executed(&self) -> u64 {
        self.tasks
    }

    /// Maximum absolute error of the last product vs. the reference multiplication
    /// (`None` before the first unit; only sensible for small sizes).
    pub fn verify_last(&self) -> Option<f64> {
        let c_tiles = self.last_c.as_ref()?;
        let reference = Matrix::multiply_reference(&self.a, &self.b);
        let (nb, ts) = (self.nb, self.ts);
        let mut err: f64 = 0.0;
        for bi in 0..nb {
            for bj in 0..nb {
                let tile = c_tiles[bi * nb + bj].lock();
                for i in 0..ts {
                    for j in 0..ts {
                        let d = (tile[i * ts + j] - reference[(bi * ts + i, bj * ts + j)]).abs();
                        err = err.max(d);
                    }
                }
            }
        }
        Some(err)
    }
}

/// Run the nested matmul and return its performance.
pub fn run_matmul(cfg: &MatmulConfig) -> MatmulResult {
    run_matmul_impl(cfg, false)
}

/// Run the nested matmul and additionally verify the product against a reference
/// multiplication (only sensible for small sizes).
pub fn run_matmul_verified(cfg: &MatmulConfig) -> MatmulResult {
    run_matmul_impl(cfg, true)
}

fn run_matmul_impl(cfg: &MatmulConfig, verify: bool) -> MatmulResult {
    let mut inst = MatmulInstance::new(cfg);
    let start = Instant::now();
    for _ in 0..cfg.iterations.max(1) {
        inst.run_once();
    }
    let elapsed = start.elapsed();

    let n = cfg.matrix_size;
    let flops = 2.0 * (n as f64).powi(3) * cfg.iterations.max(1) as f64;
    let mflops = flops / elapsed.as_secs_f64() / 1e6;
    let max_error = if verify { inst.verify_last() } else { None };

    MatmulResult {
        elapsed,
        mflops,
        tasks: inst.tasks_executed(),
        max_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usf_core::runtime::Usf;

    #[test]
    fn os_baseline_matmul_is_correct() {
        let cfg = MatmulConfig::small(ExecMode::Os);
        let r = run_matmul_verified(&cfg);
        assert!(r.max_error.unwrap() < 1e-9, "error {:?}", r.max_error);
        assert_eq!(r.tasks, (128u64 / 32).pow(3));
        assert!(r.mflops > 0.0);
    }

    #[test]
    fn usf_sched_coop_matmul_is_correct() {
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("matmul");
        let cfg = MatmulConfig::small(ExecMode::Usf(p));
        let r = run_matmul_verified(&cfg);
        assert!(r.max_error.unwrap() < 1e-9, "error {:?}", r.max_error);
        // The run must actually have exercised the cooperative scheduler.
        assert!(usf.metrics().attaches > 0);
        usf.shutdown();
    }

    #[test]
    fn pth_backend_matmul_is_correct() {
        let mut cfg = MatmulConfig::small(ExecMode::Os);
        cfg.inner_threading = BlasThreading::PthreadPerCall;
        cfg.matrix_size = 64;
        cfg.task_size = 32;
        let r = run_matmul_verified(&cfg);
        assert!(r.max_error.unwrap() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn indivisible_task_size_panics() {
        let mut cfg = MatmulConfig::small(ExecMode::Os);
        cfg.task_size = 33;
        let _ = run_matmul(&cfg);
    }

    #[test]
    fn tiled_matrix_round_trip() {
        let m = Matrix::pseudo_random(8, 8, 5);
        let t = TiledMatrix::from_matrix(&m, 4);
        assert_eq!(t.nb, 2);
        let blk = t.tile(1, 0);
        assert_eq!(blk[0], m[(4, 0)]);
    }

    #[test]
    fn serial_kernel_sanity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, 4.0, 5.0, 6.0];
        let mut c = vec![0.0; 4];
        usf_blas::kernels::gemm_acc(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, b);
    }
}
