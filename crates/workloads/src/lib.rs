//! `usf-workloads` — the workloads of the paper's evaluation (§5).
//!
//! Every experiment of the paper is represented twice:
//!
//! * a **real-execution** variant that runs actual threads through `usf-core` (SCHED_COOP)
//!   or plain OS threads (baseline) at a scale suitable for the host machine — used by the
//!   examples and integration tests to demonstrate the framework genuinely works; and
//! * a **simulated** variant that reconstructs the paper's 56/112-core machine inside
//!   `usf-simsched` so the figures and tables can be regenerated with the paper's thread
//!   counts (see DESIGN.md, substitution table).
//!
//! | Module | Paper experiment |
//! |---|---|
//! | [`matmul`] | §5.3 nested matmul, real execution |
//! | [`sim_matmul`] | §5.3 / Figure 3 heatmaps, simulated 56-core socket |
//! | [`cholesky`] | §5.4 runtime-composition Cholesky, real execution |
//! | [`sim_cholesky`] | §5.4 / Table 2, simulated |
//! | [`microservices`] | §5.5 / Figure 4 AI microservices, simulated 112-core node |
//! | [`md`] | §5.6 / Figure 5 LAMMPS + DeePMD ensembles, simulated |
//! | [`poisson`], [`stats`] | request generation and summary statistics |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cholesky;
pub mod matmul;
pub mod md;
pub mod microservices;
pub mod poisson;
pub mod sim_cholesky;
pub mod sim_matmul;
pub mod stats;
pub mod workload;

pub use cholesky::{run_cholesky, CholeskyConfig, CholeskyInstance, CholeskyResult};
pub use matmul::{run_matmul, MatmulConfig, MatmulInstance, MatmulResult};
pub use md::{run_md_scenario, MdConfig, MdResult, MdScenario};
pub use microservices::{
    run_microservices, MicroservicesConfig, MicroservicesResult, PartitionScheme,
};
pub use sim_cholesky::{run_sim_cholesky, SimCholeskyConfig, SimCholeskyResult};
pub use sim_matmul::{run_sim_matmul, MatmulVariant, SimMatmulConfig, SimMatmulResult};
pub use workload::{CholeskyWorkload, MatmulWorkload, RuntimeFlavor, SyntheticWorkload, Workload};
