//! Poisson arrival process (the request generator of §5.5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Generator of exponentially distributed inter-arrival times with a given average rate.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate_per_sec: f64,
    rng: StdRng,
}

impl PoissonProcess {
    /// A Poisson process with `rate_per_sec` average arrivals per second and a fixed seed
    /// (experiments must be reproducible).
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        PoissonProcess {
            rate_per_sec,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured average rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Next inter-arrival gap.
    pub fn next_gap(&mut self) -> Duration {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        Duration::from_secs_f64(-u.ln() / self.rate_per_sec)
    }

    /// Absolute arrival times (from 0) of the next `n` arrivals.
    pub fn arrival_times(&mut self, n: usize) -> Vec<Duration> {
        let mut t = Duration::ZERO;
        (0..n)
            .map(|_| {
                t += self.next_gap();
                t
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_monotonic_and_roughly_match_rate() {
        let mut p = PoissonProcess::new(10.0, 42);
        let times = p.arrival_times(2000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let total = times.last().unwrap().as_secs_f64();
        let observed_rate = 2000.0 / total;
        assert!(
            (observed_rate - 10.0).abs() < 1.0,
            "observed {observed_rate}"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = PoissonProcess::new(0.5, 7).arrival_times(10);
        let b = PoissonProcess::new(0.5, 7).arrival_times(10);
        let c = PoissonProcess::new(0.5, 8).arrival_times(10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        let _ = PoissonProcess::new(0.0, 1);
    }
}
