//! Simulated LAMMPS + DeePMD-kit ensembles — the workload behind Figure 5 (§5.6).
//!
//! Two molecular-dynamics ensembles run on one node. Each ensemble decomposes the simulation
//! box along the x-axis over its MPI ranks; the atom distribution is deliberately imbalanced
//! (14 interleaved dense/sparse regions holding 90% / 10% of the 100 K atoms), so per-step
//! rank work differs by an order of magnitude and the per-step synchronization (halo
//! exchange + allreduce, modelled as an ensemble-wide barrier using MPICH's yield-patched
//! busy wait) makes every step as slow as its slowest rank. DeePMD inference is memory-
//! bandwidth hungry, so rank compute phases carry a GB/s demand and contend for the node's
//! bandwidth — which is what produces the bandwidth ordering of Figure 5b.
//!
//! The evaluated scenarios follow the paper: *exclusive* (ensembles one after the other),
//! *co-location* (both concurrent, half the ranks each, disjoint core partitions),
//! *co-execution* (both concurrent, full rank counts, oversubscribed under the fair
//! scheduler) and *SCHED_COOP* (full rank counts under the cooperative scheduler), each in a
//! "node" (ensembles interleaved across both sockets) and a "socket" (each ensemble confined
//! to one socket) placement variant.

use usf_simsched::{BarrierWaitKind, Engine, Machine, Program, SchedModel, SimReport, SimTime};

/// The seven bars of Figure 5a.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdScenario {
    /// Ensembles run one after the other, each with the full rank count.
    Exclusive,
    /// Both ensembles concurrent with halved rank counts, partitioned; ranks of each ensemble
    /// spread over both sockets.
    ColocationNode,
    /// Both ensembles concurrent with halved rank counts, partitioned; each ensemble confined
    /// to one socket.
    ColocationSocket,
    /// Both ensembles concurrent with full rank counts under the fair scheduler; spread
    /// placement.
    CoexecutionNode,
    /// Both ensembles concurrent with full rank counts under the fair scheduler; per-socket
    /// placement.
    CoexecutionSocket,
    /// Both ensembles concurrent with full rank counts under SCHED_COOP; spread placement.
    SchedCoopNode,
    /// Both ensembles concurrent with full rank counts under SCHED_COOP; per-socket placement.
    SchedCoopSocket,
}

impl MdScenario {
    /// All scenarios in the order of Figure 5a.
    pub const ALL: [MdScenario; 7] = [
        MdScenario::Exclusive,
        MdScenario::ColocationNode,
        MdScenario::ColocationSocket,
        MdScenario::CoexecutionNode,
        MdScenario::CoexecutionSocket,
        MdScenario::SchedCoopNode,
        MdScenario::SchedCoopSocket,
    ];

    /// Label used in reports (matches the paper's x-axis).
    pub fn label(&self) -> &'static str {
        match self {
            MdScenario::Exclusive => "exclusive",
            MdScenario::ColocationNode => "colocation_node",
            MdScenario::ColocationSocket => "colocation_socket",
            MdScenario::CoexecutionNode => "coexecution_node",
            MdScenario::CoexecutionSocket => "coexecution_socket",
            MdScenario::SchedCoopNode => "schedcoop_node",
            MdScenario::SchedCoopSocket => "schedcoop_socket",
        }
    }

    fn halves_ranks(&self) -> bool {
        matches!(
            self,
            MdScenario::ColocationNode | MdScenario::ColocationSocket
        )
    }

    fn runs_sequentially(&self) -> bool {
        matches!(self, MdScenario::Exclusive)
    }

    fn uses_coop(&self) -> bool {
        matches!(
            self,
            MdScenario::SchedCoopNode | MdScenario::SchedCoopSocket
        )
    }

    fn partitions(&self) -> bool {
        self.halves_ranks()
    }

    fn per_socket_placement(&self) -> bool {
        matches!(
            self,
            MdScenario::ColocationSocket
                | MdScenario::CoexecutionSocket
                | MdScenario::SchedCoopSocket
        )
    }
}

/// Configuration of a Figure 5 run.
#[derive(Debug, Clone)]
pub struct MdConfig {
    /// Scenario to simulate.
    pub scenario: MdScenario,
    /// Simulated machine (full node by default).
    pub machine: Machine,
    /// MPI ranks per ensemble in the full configuration (56 in the paper; co-location halves it).
    pub ranks_per_ensemble: usize,
    /// OpenMP threads per rank (2 in the paper).
    pub threads_per_rank: usize,
    /// Simulation steps per ensemble (100 in the paper).
    pub steps: usize,
    /// Total atoms per ensemble (100 000 in the paper).
    pub atoms: usize,
    /// Interleaved dense/sparse regions along x (14 in the paper).
    pub regions: usize,
    /// Fraction of atoms in the dense regions (0.9 in the paper).
    pub dense_fraction: f64,
    /// Per-atom per-step compute cost on one core.
    pub per_atom_cost: SimTime,
    /// Memory-bandwidth demand of one fully busy rank thread (GB/s).
    pub bw_per_thread_gbps: f64,
    /// Sequential initialization time per ensemble (the bandwidth valleys of Figure 5b).
    pub init_time: SimTime,
    /// Yield period of the (patched) MPI/BLAS busy waits.
    pub yield_slice: SimTime,
}

impl MdConfig {
    /// A Figure 5 scenario with the paper's parameters.
    pub fn new(scenario: MdScenario) -> Self {
        MdConfig {
            scenario,
            machine: Machine::marenostrum5(),
            ranks_per_ensemble: 56,
            threads_per_rank: 2,
            steps: 100,
            atoms: 100_000,
            regions: 14,
            dense_fraction: 0.9,
            per_atom_cost: SimTime::from_micros(1),
            bw_per_thread_gbps: 2.2,
            init_time: SimTime::from_secs(5),
            yield_slice: SimTime::from_millis(1),
        }
    }
}

/// Result of one Figure 5 scenario.
#[derive(Debug, Clone)]
pub struct MdResult {
    /// Aggregate performance in Katom-step/s across both ensembles.
    pub katom_steps_per_sec: f64,
    /// Average node memory bandwidth over the run (GB/s) — Figure 5b.
    pub average_bandwidth_gbps: f64,
    /// Peak node memory bandwidth (GB/s).
    pub peak_bandwidth_gbps: f64,
    /// Total wall-clock (simulated) time for both ensembles.
    pub total_time: SimTime,
    /// Full simulator report (the second report for the Exclusive scenario's second run is
    /// merged into the totals).
    pub report: SimReport,
}

/// Atom count of each rank given the dense/sparse imbalance profile.
pub fn rank_atoms(cfg: &MdConfig, ranks: usize) -> Vec<usize> {
    let regions = cfg.regions.max(1);
    let dense_regions = regions.div_ceil(2);
    let sparse_regions = regions - dense_regions;
    let dense_atoms_per_region = cfg.dense_fraction * cfg.atoms as f64 / dense_regions as f64;
    let sparse_atoms_per_region = if sparse_regions == 0 {
        0.0
    } else {
        (1.0 - cfg.dense_fraction) * cfg.atoms as f64 / sparse_regions as f64
    };
    (0..ranks)
        .map(|r| {
            // Rank r covers a slab of the x-axis; find its region (regions alternate
            // dense/sparse along x).
            let region = r * regions / ranks;
            let per_region = if region % 2 == 0 {
                dense_atoms_per_region
            } else {
                sparse_atoms_per_region
            };
            let ranks_in_region = (ranks / regions).max(1);
            (per_region / ranks_in_region as f64).round() as usize
        })
        .collect()
}

/// Run one scenario and compute its aggregate metrics.
pub fn run_md_scenario(cfg: &MdConfig) -> MdResult {
    if cfg.scenario.runs_sequentially() {
        // Two back-to-back exclusive runs: total time is the sum; bandwidth averages over both.
        let first = run_ensembles(cfg, 1);
        let second = run_ensembles(cfg, 1);
        let total = first.makespan + second.makespan;
        let atom_steps = 2.0 * cfg.atoms as f64 * cfg.steps as f64;
        let avg_bw = (first.average_bandwidth() * first.makespan.as_secs_f64()
            + second.average_bandwidth() * second.makespan.as_secs_f64())
            / total.as_secs_f64().max(1e-9);
        MdResult {
            katom_steps_per_sec: atom_steps / total.as_secs_f64().max(1e-9) / 1e3,
            average_bandwidth_gbps: avg_bw,
            peak_bandwidth_gbps: first.peak_bandwidth().max(second.peak_bandwidth()),
            total_time: total,
            report: first,
        }
    } else {
        let report = run_ensembles(cfg, 2);
        let atom_steps = 2.0 * cfg.atoms as f64 * cfg.steps as f64;
        MdResult {
            katom_steps_per_sec: atom_steps / report.makespan.as_secs_f64().max(1e-9) / 1e3,
            average_bandwidth_gbps: report.average_bandwidth(),
            peak_bandwidth_gbps: report.peak_bandwidth(),
            total_time: report.makespan,
            report,
        }
    }
}

/// Build and run the simulation for `ensembles` concurrent ensembles.
fn run_ensembles(cfg: &MdConfig, ensembles: usize) -> SimReport {
    let ranks = if cfg.scenario.halves_ranks() {
        cfg.ranks_per_ensemble / 2
    } else {
        cfg.ranks_per_ensemble
    };
    let threads = cfg.threads_per_rank.max(1);
    let model = build_model(cfg, ensembles, ranks * threads);
    let mut engine = Engine::new(cfg.machine.clone(), &model);
    engine.set_max_sim_time(SimTime::from_secs(24 * 3600));

    let atoms = rank_atoms(cfg, ranks);
    for e in 0..ensembles {
        let process = engine.add_process(format!("ensemble-{e}"), 1.0);
        let barrier_base = (e as u64 + 1) * 1_000_000;
        for (r, &n_atoms) in atoms.iter().enumerate() {
            // Per-step per-thread work: the rank's atoms split over its OpenMP threads.
            let per_thread_secs = n_atoms as f64 * cfg.per_atom_cost.as_secs_f64() / threads as f64;
            let per_thread = SimTime::from_secs_f64(per_thread_secs.max(1e-7));
            // Each rank thread: init (rank 0 models the sequential ensemble initialization),
            // then `steps` iterations of compute + ensemble-wide barrier (halo exchange +
            // allreduce over all rank threads of this ensemble).
            for t in 0..threads {
                let mut prog = Program::new(format!("e{e}-r{r}-t{t}"));
                if r == 0 && t == 0 {
                    prog = prog.compute(cfg.init_time);
                }
                let step_body = Program::new("step")
                    .compute_bw(per_thread, cfg.bw_per_thread_gbps)
                    .barrier(
                        barrier_base,
                        ranks * threads,
                        BarrierWaitKind::SpinYield {
                            slice: cfg.yield_slice,
                        },
                    );
                prog = prog.repeat(cfg.steps, &step_body);
                engine.add_thread(process, prog.build());
            }
        }
    }
    engine.run()
}

/// Scheduler model for the scenario.
fn build_model(cfg: &MdConfig, ensembles: usize, threads_per_ensemble: usize) -> SchedModel {
    let cores = cfg.machine.cores();
    if cfg.scenario.uses_coop() {
        return SchedModel::coop_default();
    }
    if cfg.scenario.partitions() && ensembles == 2 {
        // Co-location: each ensemble gets a disjoint core set sized to its thread count.
        let per = threads_per_ensemble.min(cores / 2);
        let assignments = if cfg.scenario.per_socket_placement() {
            vec![
                (0usize, (0..per).collect::<Vec<_>>()),
                (1usize, (cores / 2..cores / 2 + per).collect::<Vec<_>>()),
            ]
        } else {
            // Spread placement: even cores to ensemble 0, odd cores to ensemble 1.
            vec![
                (
                    0usize,
                    (0..cores)
                        .filter(|c| c % 2 == 0)
                        .take(per)
                        .collect::<Vec<_>>(),
                ),
                (
                    1usize,
                    (0..cores)
                        .filter(|c| c % 2 == 1)
                        .take(per)
                        .collect::<Vec<_>>(),
                ),
            ]
        };
        return SchedModel::Partitioned { assignments };
    }
    SchedModel::Fair
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scenario: MdScenario) -> MdResult {
        let mut cfg = MdConfig::new(scenario);
        cfg.machine = Machine::small_numa(8, 2);
        cfg.machine.memory_bw_gbps = 40.0;
        cfg.ranks_per_ensemble = 4;
        cfg.threads_per_rank = 2;
        cfg.steps = 5;
        cfg.atoms = 2_000;
        cfg.regions = 4;
        cfg.init_time = SimTime::from_millis(50);
        cfg.per_atom_cost = SimTime::from_micros(10);
        cfg.bw_per_thread_gbps = 8.0;
        cfg.yield_slice = SimTime::from_micros(200);
        run_md_scenario(&cfg)
    }

    #[test]
    fn imbalance_profile_sums_to_total_atoms_roughly() {
        let cfg = MdConfig::new(MdScenario::Exclusive);
        let atoms = rank_atoms(&cfg, 56);
        let total: usize = atoms.iter().sum();
        assert!(
            (total as f64 - 100_000.0).abs() / 100_000.0 < 0.05,
            "total {total}"
        );
        let max = *atoms.iter().max().unwrap();
        let min = *atoms.iter().min().unwrap();
        assert!(
            max > 3 * min,
            "dense ranks must carry much more work ({max} vs {min})"
        );
    }

    #[test]
    fn all_scenarios_complete() {
        for s in MdScenario::ALL {
            let r = quick(s);
            assert!(!r.report.deadlocked, "{s:?} deadlocked");
            assert!(r.katom_steps_per_sec > 0.0);
            assert!(r.total_time > SimTime::ZERO);
        }
    }

    #[test]
    fn concurrent_ensembles_beat_exclusive_in_aggregate() {
        // The paper's takeaway: co-executing both ensembles fills the imbalance gaps, so the
        // aggregate Katom-step/s exceeds running them back to back.
        let exclusive = quick(MdScenario::Exclusive);
        let coop = quick(MdScenario::SchedCoopNode);
        assert!(
            coop.katom_steps_per_sec > exclusive.katom_steps_per_sec,
            "SCHED_COOP co-execution ({:.1}) must beat exclusive ({:.1})",
            coop.katom_steps_per_sec,
            exclusive.katom_steps_per_sec
        );
    }

    #[test]
    fn sched_coop_at_least_matches_coexecution() {
        let coex = quick(MdScenario::CoexecutionNode);
        let coop = quick(MdScenario::SchedCoopNode);
        assert!(
            coop.katom_steps_per_sec >= coex.katom_steps_per_sec * 0.95,
            "SCHED_COOP ({:.1}) must not lose to preemptive co-execution ({:.1})",
            coop.katom_steps_per_sec,
            coex.katom_steps_per_sec
        );
    }

    #[test]
    fn bandwidth_usage_is_higher_when_co_executing() {
        let exclusive = quick(MdScenario::Exclusive);
        let coop = quick(MdScenario::SchedCoopNode);
        assert!(
            coop.average_bandwidth_gbps > exclusive.average_bandwidth_gbps,
            "two concurrent ensembles must consume more bandwidth ({:.1} vs {:.1})",
            coop.average_bandwidth_gbps,
            exclusive.average_bandwidth_gbps
        );
        assert!(coop.peak_bandwidth_gbps <= 40.0 + 1e-6);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            MdScenario::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), MdScenario::ALL.len());
    }
}
