//! The reusable [`Workload`] abstraction behind the scenario engine.
//!
//! Every real-execution workload is split into the classic benchmark lifecycle —
//! **setup** (generate inputs, spawn persistent runtimes), **run one unit** (one complete
//! product / factorization / request / simulation step), **teardown** — so that any driver
//! (a figure binary, the `usf-scenarios` executors, a test) can pace, interleave and
//! co-run workloads instead of each binary inlining its own driver loop. The units of the
//! HPC workloads are the existing [`MatmulInstance`] and
//! [`CholeskyInstance`]; the service/MD-shaped kinds
//! are calibrated synthetic kernels whose *scheduling structure* (parallel regions,
//! imbalance, arrival gaps, busy-wait-with-yield) matches the paper's workloads at sizes a
//! test machine can run for real.

use crate::cholesky::{CholeskyConfig, CholeskyInstance};
use crate::matmul::{MatmulConfig, MatmulInstance};
use crate::poisson::PoissonProcess;
use std::time::{Duration, Instant};
use usf_core::exec::ExecMode;
use usf_runtimes::taskrt::{TaskRuntime, TaskRuntimeConfig};
use usf_runtimes::{Team, TeamConfig, TransientPool, WaitPolicy};

/// A workload that can be set up once and then driven unit by unit.
///
/// `run_unit` is called with increasing unit indices; implementations may use the index
/// (e.g. for seeded arrival gaps) but must not assume it starts at zero.
pub trait Workload: Send {
    /// Display name (used in reports).
    fn name(&self) -> &str;

    /// One-time preparation: generate inputs, spawn persistent worker pools. Drivers call
    /// this exactly once before the first unit; the default does nothing.
    fn setup(&mut self) {}

    /// Execute one unit of work (one product, one factorization, one request, one step).
    fn run_unit(&mut self, unit: usize);

    /// Release resources the workload holds (worker pools, caches). Drivers call this
    /// exactly once after the last unit; the default does nothing.
    fn teardown(&mut self) {}
}

/// The inner-runtime flavour a workload parallelizes its units with — the "which runtime
/// is underneath" axis of the paper's composition experiments (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeFlavor {
    /// A task runtime with a persistent worker pool (OmpSs-2/TBB-like).
    TaskRt,
    /// A persistent fork-join team (OpenMP-like; the calling thread is thread 0).
    ForkJoin,
    /// A transient spawn-per-call pool (BLIS-pth / pthreadpool-like thread churn).
    ThreadPool,
}

impl RuntimeFlavor {
    /// All flavours.
    pub const ALL: [RuntimeFlavor; 3] = [
        RuntimeFlavor::TaskRt,
        RuntimeFlavor::ForkJoin,
        RuntimeFlavor::ThreadPool,
    ];

    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            RuntimeFlavor::TaskRt => "taskrt",
            RuntimeFlavor::ForkJoin => "forkjoin",
            RuntimeFlavor::ThreadPool => "threadpool",
        }
    }
}

/// Busy-work for roughly `d`, yielding periodically (the paper's patched busy wait): under
/// SCHED_COOP the yields are the scheduling points that let co-runners make progress.
pub fn spin_for(d: Duration) {
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        usf_core::timing::spin_wait_hint(256, Some(128));
    }
}

/// A parallel region runner for one [`RuntimeFlavor`]: runs `f(0..n)` concurrently and
/// joins before returning.
enum Region {
    TaskRt(TaskRuntime),
    ForkJoin(Team),
    ThreadPool(TransientPool),
}

impl Region {
    fn new(flavor: RuntimeFlavor, threads: usize, exec: &ExecMode, name: &str) -> Self {
        match flavor {
            RuntimeFlavor::TaskRt => Region::TaskRt(TaskRuntime::new(
                TaskRuntimeConfig::new(threads, exec.clone()).name(name),
            )),
            RuntimeFlavor::ForkJoin => Region::ForkJoin(Team::new(
                TeamConfig::new(threads, exec.clone())
                    .wait_policy(WaitPolicy::Passive)
                    .name(name),
            )),
            RuntimeFlavor::ThreadPool => Region::ThreadPool(TransientPool::new(exec.clone())),
        }
    }

    fn run(&self, threads: usize, f: impl Fn(usize) + Send + Sync) {
        match self {
            Region::TaskRt(rt) => {
                // Same lifetime-erasure discipline as `Team::parallel` and
                // `TransientPool::run`: every submitted task is joined by `taskwait`
                // before this frame (and `f`) can be dropped.
                let f_ref: &(dyn Fn(usize) + Send + Sync) = &f;
                let f_static: &'static (dyn Fn(usize) + Send + Sync) =
                    unsafe { std::mem::transmute(f_ref) };
                for i in 0..threads {
                    rt.submit_independent(move || f_static(i));
                }
                rt.taskwait();
            }
            Region::ForkJoin(team) => team.parallel(threads, |ctx| f(ctx.thread_num())),
            Region::ThreadPool(pool) => pool.run(threads, f),
        }
    }
}

/// How a synthetic workload spaces its units out in time.
#[derive(Debug, Clone)]
enum UnitPacing {
    /// Back to back.
    None,
    /// A fixed off-core sleep before each unit.
    FixedGap(Duration),
    /// Seeded exponential gaps before each unit (open-loop request arrivals).
    Poisson(PoissonProcess),
}

/// A calibrated synthetic workload: per unit, an optional arrival gap, then one parallel
/// region of `threads` spinning workers (with per-thread imbalance weights), then an
/// optional off-core sleep — enough to express the service, MD-step, burst and spin-sleep
/// shapes of the scenario library with real threads and real scheduling points.
pub struct SyntheticWorkload {
    label: String,
    threads: usize,
    flavor: RuntimeFlavor,
    exec: ExecMode,
    /// Nominal on-core work per unit summed over all threads.
    unit_work: Duration,
    /// Per-thread share of `unit_work` (normalized at setup; uniform when empty).
    weights: Vec<f64>,
    pacing: UnitPacing,
    /// Off-core sleep after each unit's region.
    post_sleep: Duration,
    region: Option<Region>,
    units_run: u64,
}

impl SyntheticWorkload {
    /// Uniform spin-then-sleep workload (the simplest co-runner: `unit_work` on-core per
    /// unit split over `threads`, then `post_sleep` off-core).
    pub fn spin_sleep(
        threads: usize,
        flavor: RuntimeFlavor,
        exec: ExecMode,
        unit_work: Duration,
        post_sleep: Duration,
    ) -> Self {
        SyntheticWorkload {
            label: format!("spin-sleep-{}", flavor.label()),
            threads: threads.max(1),
            flavor,
            exec,
            unit_work,
            weights: Vec::new(),
            pacing: UnitPacing::None,
            post_sleep,
            region: None,
            units_run: 0,
        }
    }

    /// Latency-service stand-in: one unit is one request — a parallel inference-like
    /// region of `threads` workers; requests arrive open-loop as a seeded Poisson process
    /// of `rate` requests/second.
    pub fn service_requests(
        threads: usize,
        flavor: RuntimeFlavor,
        exec: ExecMode,
        unit_work: Duration,
        rate: f64,
        seed: u64,
    ) -> Self {
        SyntheticWorkload {
            label: format!("service-{}", flavor.label()),
            threads: threads.max(1),
            flavor,
            exec,
            unit_work,
            weights: Vec::new(),
            pacing: UnitPacing::Poisson(PoissonProcess::new(rate.max(1e-3), seed)),
            post_sleep: Duration::ZERO,
            region: None,
            units_run: 0,
        }
    }

    /// MD-step stand-in: one unit is one simulation step — a fork-join region whose
    /// per-thread work follows the dense/sparse imbalance profile of §5.6 (`imbalance` =
    /// heaviest/lightest ratio), synchronized by the region join (the halo exchange).
    pub fn md_steps(
        threads: usize,
        flavor: RuntimeFlavor,
        exec: ExecMode,
        unit_work: Duration,
        imbalance: f64,
    ) -> Self {
        let threads = threads.max(1);
        let ratio = imbalance.max(1.0);
        // Alternate heavy/light threads (the interleaved dense/sparse regions).
        let weights: Vec<f64> = (0..threads)
            .map(|i| if i % 2 == 0 { ratio } else { 1.0 })
            .collect();
        SyntheticWorkload {
            label: format!("md-steps-{}", flavor.label()),
            threads,
            flavor,
            exec,
            unit_work,
            weights,
            pacing: UnitPacing::None,
            post_sleep: Duration::ZERO,
            region: None,
            units_run: 0,
        }
    }

    /// Bursty batch stand-in: units separated by a fixed think-time gap, each a uniform
    /// parallel burst (poisson-burst's fixed-gap sibling).
    pub fn bursts(
        threads: usize,
        flavor: RuntimeFlavor,
        exec: ExecMode,
        unit_work: Duration,
        gap: Duration,
    ) -> Self {
        SyntheticWorkload {
            label: format!("burst-{}", flavor.label()),
            threads: threads.max(1),
            flavor,
            exec,
            unit_work,
            weights: Vec::new(),
            pacing: UnitPacing::FixedGap(gap),
            post_sleep: Duration::ZERO,
            region: None,
            units_run: 0,
        }
    }

    /// Number of units executed so far.
    pub fn units_run(&self) -> u64 {
        self.units_run
    }

    /// The parallel-region width.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Workload for SyntheticWorkload {
    fn name(&self) -> &str {
        &self.label
    }

    fn setup(&mut self) {
        if self.weights.is_empty() {
            self.weights = vec![1.0; self.threads];
        }
        let total: f64 = self.weights.iter().sum();
        // Normalize so the weights distribute exactly `unit_work` across the region.
        for w in &mut self.weights {
            *w = if total > 0.0 {
                *w / total
            } else {
                1.0 / self.threads as f64
            };
        }
        self.region = Some(Region::new(
            self.flavor,
            self.threads,
            &self.exec,
            &self.label,
        ));
    }

    fn run_unit(&mut self, _unit: usize) {
        match &mut self.pacing {
            UnitPacing::None => {}
            UnitPacing::FixedGap(gap) => usf_core::timing::sleep(*gap),
            UnitPacing::Poisson(p) => usf_core::timing::sleep(p.next_gap()),
        }
        let region = self.region.as_ref().expect("setup() must run before units");
        let unit_work = self.unit_work;
        let weights = &self.weights;
        region.run(self.threads, |i| {
            spin_for(unit_work.mul_f64(weights[i.min(weights.len() - 1)]));
        });
        if self.post_sleep > Duration::ZERO {
            usf_core::timing::sleep(self.post_sleep);
        }
        self.units_run += 1;
    }

    fn teardown(&mut self) {
        self.region = None; // drops the pool/team, joining its workers
    }
}

/// [`Workload`] adapter over [`MatmulInstance`]: one unit = one complete `C = A·B`.
pub struct MatmulWorkload {
    cfg: MatmulConfig,
    inst: Option<MatmulInstance>,
}

impl MatmulWorkload {
    /// Wrap a matmul configuration (instance built at `setup`).
    pub fn new(cfg: MatmulConfig) -> Self {
        MatmulWorkload { cfg, inst: None }
    }
}

impl Workload for MatmulWorkload {
    fn name(&self) -> &str {
        "matmul"
    }

    fn setup(&mut self) {
        self.inst = Some(MatmulInstance::new(&self.cfg));
    }

    fn run_unit(&mut self, _unit: usize) {
        self.inst
            .as_mut()
            .expect("setup() must run before units")
            .run_once();
    }

    fn teardown(&mut self) {
        self.inst = None;
    }
}

/// [`Workload`] adapter over [`CholeskyInstance`]: one unit = one complete factorization.
pub struct CholeskyWorkload {
    cfg: CholeskyConfig,
    inst: Option<CholeskyInstance>,
}

impl CholeskyWorkload {
    /// Wrap a Cholesky configuration (instance built at `setup`).
    pub fn new(cfg: CholeskyConfig) -> Self {
        CholeskyWorkload { cfg, inst: None }
    }
}

impl Workload for CholeskyWorkload {
    fn name(&self) -> &str {
        "cholesky"
    }

    fn setup(&mut self) {
        self.inst = Some(CholeskyInstance::new(&self.cfg));
    }

    fn run_unit(&mut self, _unit: usize) {
        self.inst
            .as_mut()
            .expect("setup() must run before units")
            .factorize_once();
    }

    fn teardown(&mut self) {
        self.inst = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usf_core::runtime::Usf;

    fn tiny(flavor: RuntimeFlavor, exec: ExecMode) -> SyntheticWorkload {
        SyntheticWorkload::spin_sleep(
            2,
            flavor,
            exec,
            Duration::from_micros(200),
            Duration::from_micros(50),
        )
    }

    #[test]
    fn synthetic_lifecycle_runs_units_under_all_flavors() {
        for flavor in RuntimeFlavor::ALL {
            let mut w = tiny(flavor, ExecMode::Os);
            w.setup();
            w.run_unit(0);
            w.run_unit(1);
            w.teardown();
            assert_eq!(w.units_run(), 2, "{flavor:?}");
        }
    }

    #[test]
    fn synthetic_runs_cooperatively_under_usf() {
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("synthetic");
        let mut w = tiny(RuntimeFlavor::ForkJoin, ExecMode::Usf(p));
        w.setup();
        w.run_unit(0);
        w.teardown();
        assert!(usf.metrics().attaches > 0, "must use cooperative threads");
        usf.shutdown();
    }

    #[test]
    fn md_weights_are_imbalanced_and_normalized() {
        let mut w = SyntheticWorkload::md_steps(
            4,
            RuntimeFlavor::ForkJoin,
            ExecMode::Os,
            Duration::from_micros(100),
            8.0,
        );
        w.setup();
        let total: f64 = w.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(w.weights[0] > 3.0 * w.weights[1]);
        w.run_unit(0);
        w.teardown();
    }

    #[test]
    fn service_pacing_is_deterministic_per_seed() {
        let mk = || {
            SyntheticWorkload::service_requests(
                1,
                RuntimeFlavor::ThreadPool,
                ExecMode::Os,
                Duration::from_micros(50),
                10_000.0,
                7,
            )
        };
        let (mut a, mut b) = (mk(), mk());
        a.setup();
        b.setup();
        a.run_unit(0);
        b.run_unit(0);
        assert_eq!(a.units_run(), b.units_run());
    }

    #[test]
    fn matmul_and_cholesky_adapters_drive_instances() {
        let mut m = MatmulWorkload::new(MatmulConfig {
            matrix_size: 64,
            task_size: 32,
            ..MatmulConfig::small(ExecMode::Os)
        });
        m.setup();
        m.run_unit(0);
        assert!(m.inst.as_ref().unwrap().verify_last().unwrap() < 1e-9);
        m.teardown();

        let mut c = CholeskyWorkload::new(CholeskyConfig {
            matrix_size: 64,
            tile_size: 32,
            ..CholeskyConfig::small(ExecMode::Os)
        });
        c.setup();
        c.run_unit(0);
        assert!(c.inst.as_ref().unwrap().verify_last().unwrap() < 1e-6);
        c.teardown();
    }

    #[test]
    fn spin_for_busy_waits_roughly_the_requested_time() {
        let start = Instant::now();
        spin_for(Duration::from_millis(2));
        assert!(start.elapsed() >= Duration::from_millis(2));
    }
}
