//! Simulated AI microservices benchmark — the workload behind Figure 4 (§5.5).
//!
//! Four processes share a 112-core node: a Gateway and three CPU-inference servers (LLaMA
//! 3.2 1B, GPT-2 124M, RoBERTa 355M). Requests arrive following a Poisson process; for each
//! request the gateway runs a small planning phase and forwards it to the three servers in
//! parallel, blocking until all three answer. Each server processes the request as 8 batches;
//! every batch is an OpenBLAS-parallelized inference using the server's ideal thread count
//! (LLaMA 28, GPT-2 8, RoBERTa 8 — the strong-scaling optima reported in the paper) with a
//! busy-wait (yield-patched) end-of-kernel barrier. At high request rates the overlapping
//! requests oversubscribe the node.
//!
//! The five evaluated schemes map to scheduler models exactly as in the paper:
//! `bl-eq` and `bl-opt` are static partitionings under the fair scheduler, `bl-none` is the
//! unpartitioned fair scheduler, `bl-none-seq` disables inference parallelism, and
//! `SCHED_COOP` is the cooperative scheduler with no partitioning and no priorities.

use crate::poisson::PoissonProcess;
use usf_simsched::{BarrierWaitKind, Engine, Machine, Program, SchedModel, SimReport, SimTime};

/// The three inference models hosted by the servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Meta LLaMA 3.2 (1B parameters): 5.4 s per request at 28 cores.
    Llama,
    /// OpenAI GPT-2 (124M): 1.8 s per request at 8 cores.
    Gpt2,
    /// Fine-tuned RoBERTa-large (355M): 1.2 s per request at 8 cores.
    Roberta,
}

impl Model {
    /// All models, in the paper's order.
    pub const ALL: [Model; 3] = [Model::Llama, Model::Gpt2, Model::Roberta];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Model::Llama => "llama-3.2-1b",
            Model::Gpt2 => "gpt2-124m",
            Model::Roberta => "roberta-355m",
        }
    }

    /// Ideal inner thread count (the isolated strong-scaling optimum of §5.5).
    pub fn ideal_threads(&self) -> usize {
        match self {
            Model::Llama => 28,
            Model::Gpt2 => 8,
            Model::Roberta => 8,
        }
    }

    /// Isolated per-request inference time at the ideal thread count.
    pub fn isolated_latency(&self) -> SimTime {
        match self {
            Model::Llama => SimTime::from_millis(5400),
            Model::Gpt2 => SimTime::from_millis(1800),
            Model::Roberta => SimTime::from_millis(1200),
        }
    }
}

/// Resource-management scheme (the five curves of Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Equal static partition: the three servers split the cores evenly, the gateway gets 2.
    BlEq,
    /// Optimized partition: 71 cores for LLaMA, 23 for GPT-2, 16 for RoBERTa (§5.5).
    BlOpt,
    /// No partitioning; the Linux fair scheduler manages everything.
    BlNone,
    /// No partitioning and sequential (single-threaded) inference.
    BlNoneSeq,
    /// USF's SCHED_COOP, no partitioning, no priorities.
    SchedCoop,
}

impl PartitionScheme {
    /// All schemes, in the paper's legend order.
    pub const ALL: [PartitionScheme; 5] = [
        PartitionScheme::BlEq,
        PartitionScheme::BlOpt,
        PartitionScheme::BlNone,
        PartitionScheme::BlNoneSeq,
        PartitionScheme::SchedCoop,
    ];

    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            PartitionScheme::BlEq => "bl-eq",
            PartitionScheme::BlOpt => "bl-opt",
            PartitionScheme::BlNone => "bl-none",
            PartitionScheme::BlNoneSeq => "bl-none-seq",
            PartitionScheme::SchedCoop => "sched_coop",
        }
    }
}

/// Configuration of one Figure 4 run (one request rate × one scheme).
#[derive(Debug, Clone)]
pub struct MicroservicesConfig {
    /// Average request rate (requests per second).
    pub request_rate: f64,
    /// Resource-management scheme.
    pub scheme: PartitionScheme,
    /// Number of requests per run (28 in the paper).
    pub requests: usize,
    /// Batches per request (8 in the paper).
    pub batches: usize,
    /// Simulated machine (full Marenostrum 5 node).
    pub machine: Machine,
    /// Gateway planning time per request.
    pub gateway_planning: SimTime,
    /// Scale factor applied to all inference times (1.0 = the paper's durations; smaller
    /// values keep unit tests fast while preserving the shape).
    pub time_scale: f64,
    /// Busy-wait yield period of the inference barriers.
    pub yield_slice: SimTime,
    /// Seed of the Poisson arrival process.
    pub seed: u64,
}

impl MicroservicesConfig {
    /// A Figure 4 point with the paper's parameters.
    pub fn new(request_rate: f64, scheme: PartitionScheme) -> Self {
        MicroservicesConfig {
            request_rate,
            scheme,
            requests: 28,
            batches: 8,
            machine: Machine::marenostrum5(),
            gateway_planning: SimTime::from_millis(50),
            time_scale: 1.0,
            yield_slice: SimTime::from_millis(1),
            seed: 42,
        }
    }
}

/// Result of one Figure 4 run.
#[derive(Debug, Clone)]
pub struct MicroservicesResult {
    /// Mean end-to-end request latency.
    pub mean_latency: SimTime,
    /// 95th-percentile latency.
    pub p95_latency: SimTime,
    /// Achieved throughput in requests per second.
    pub throughput: f64,
    /// Per-request `(arrival, completion)` pairs in submission order (Figure 4 bottom).
    pub request_timeline: Vec<(SimTime, SimTime)>,
    /// Full simulator report.
    pub report: SimReport,
}

/// Run one Figure 4 configuration.
pub fn run_microservices(cfg: &MicroservicesConfig) -> MicroservicesResult {
    let scale = cfg.time_scale.max(1e-6);
    let (model, partitions) = scheme_to_model(cfg);
    let mut engine = Engine::new(cfg.machine.clone(), &model);

    // Processes: gateway (nice 0 → weight 1.0) and the three servers (nice 20 → low weight)
    // for the baselines; SCHED_COOP does not use priorities, but the weights only matter to
    // the fair policy anyway.
    let gw = engine.add_process("gateway", 1.0);
    let llama = engine.add_process("llama-server", 0.1);
    let gpt2 = engine.add_process("gpt2-server", 0.1);
    let roberta = engine.add_process("roberta-server", 0.1);
    let proc_of = |m: Model| match m {
        Model::Llama => llama,
        Model::Gpt2 => gpt2,
        Model::Roberta => roberta,
    };
    drop(partitions); // partitions were already baked into the scheduling model

    engine.set_max_sim_time(SimTime::from_secs(4 * 3600));

    // Request arrivals.
    let mut poisson = PoissonProcess::new(cfg.request_rate, cfg.seed);
    let arrivals: Vec<SimTime> = poisson
        .arrival_times(cfg.requests)
        .into_iter()
        .map(|d| SimTime::from_secs_f64(d.as_secs_f64()))
        .collect();

    let sequential = cfg.scheme == PartitionScheme::BlNoneSeq;
    let mut gateway_threads = Vec::new();
    let mut next_id: u64 = 1;
    for (r, &arrival) in arrivals.iter().enumerate() {
        // Each server's per-request program: `batches` inferences, each an inner team of the
        // model's ideal thread count with a busy-wait (yielding) barrier.
        let mut server_programs = Vec::new();
        for m in Model::ALL {
            let threads = if sequential { 1 } else { m.ideal_threads() };
            // The model's total work per batch is fixed: `isolated_latency` is the wall
            // time at `ideal_threads`, so one batch costs `isolated × ideal / batches`
            // core-seconds, split across however many threads this scheme actually uses
            // (1 for bl-none-seq — which is what makes sequential inference slow).
            let per_batch_thread = SimTime::from_secs_f64(
                m.isolated_latency().as_secs_f64() * scale * m.ideal_threads() as f64
                    / threads as f64
                    / cfg.batches as f64,
            );
            let mut prog = Program::new(format!("{}-req{r}", m.name()));
            for _ in 0..cfg.batches {
                let barrier = next_id;
                next_id += 1;
                if threads > 1 {
                    let child = Program::new("blas")
                        .compute(per_batch_thread)
                        .barrier(
                            barrier,
                            threads,
                            BarrierWaitKind::SpinYield {
                                slice: cfg.yield_slice,
                            },
                        )
                        .build();
                    prog = prog
                        .spawn(child, proc_of(m), threads - 1)
                        .compute(per_batch_thread)
                        .barrier(
                            barrier,
                            threads,
                            BarrierWaitKind::SpinYield {
                                slice: cfg.yield_slice,
                            },
                        )
                        .join_children();
                } else {
                    prog = prog.compute(per_batch_thread);
                }
            }
            // Tell the gateway this model's answer is ready.
            let done_event = 1_000_000 + r as u64;
            prog = prog.signal(done_event);
            server_programs.push((proc_of(m), prog.build()));
        }

        // Gateway request thread: plan, fan out to the three servers, wait for all three,
        // then assemble the response.
        let done_event = 1_000_000 + r as u64;
        let mut gw_prog = Program::new(format!("request-{r}")).compute(SimTime::from_secs_f64(
            cfg.gateway_planning.as_secs_f64() * scale,
        ));
        for (proc, prog) in server_programs {
            gw_prog = gw_prog.spawn(prog, proc, 1);
        }
        gw_prog = gw_prog
            .wait_event(done_event, Model::ALL.len() as u64)
            .compute(SimTime::from_secs_f64(
                cfg.gateway_planning.as_secs_f64() * scale / 2.0,
            ))
            .join_children();
        let tid = engine.add_thread_at(gw, gw_prog.build(), arrival);
        gateway_threads.push((tid, arrival));
    }

    let report = engine.run();
    let mut latencies = Vec::new();
    let mut timeline = Vec::new();
    for (tid, arrival) in &gateway_threads {
        let finish = report
            .thread_times
            .get(tid)
            .and_then(|(_, f)| *f)
            .unwrap_or(report.makespan);
        latencies.push(finish.saturating_sub(*arrival).as_secs_f64());
        timeline.push((*arrival, finish));
    }
    let mean_latency = SimTime::from_secs_f64(crate::stats::mean(&latencies));
    let p95_latency = SimTime::from_secs_f64(crate::stats::percentile(&latencies, 95.0));
    let throughput = cfg.requests as f64 / report.makespan.as_secs_f64().max(1e-9);

    MicroservicesResult {
        mean_latency,
        p95_latency,
        throughput,
        request_timeline: timeline,
        report,
    }
}

/// Map a scheme to a scheduler model (and the partition table, for reporting).
fn scheme_to_model(cfg: &MicroservicesConfig) -> (SchedModel, Vec<(usize, Vec<usize>)>) {
    let cores = cfg.machine.cores();
    match cfg.scheme {
        PartitionScheme::BlNone | PartitionScheme::BlNoneSeq => (SchedModel::Fair, Vec::new()),
        PartitionScheme::SchedCoop => (SchedModel::coop_default(), Vec::new()),
        PartitionScheme::BlEq => {
            // Gateway: 2 cores; the rest split evenly among the three servers.
            let per = (cores - 2) / 3;
            let mut next = 2;
            let mut assignments = Vec::new();
            for p in [1usize, 2, 3] {
                assignments.push((p, (next..next + per).collect()));
                next += per;
            }
            assignments.push((0, vec![0, 1]));
            (
                SchedModel::Partitioned {
                    assignments: assignments.clone(),
                },
                assignments,
            )
        }
        PartitionScheme::BlOpt => {
            // 71 / 23 / 16 cores for LLaMA / GPT-2 / RoBERTa minus the 2 gateway cores, as in
            // §5.5 (scaled if the machine is smaller than 112 cores).
            let fractions = [(1usize, 0.64), (2, 0.21), (3, 0.14)];
            let avail = cores.saturating_sub(2);
            let mut next = 2;
            let mut assignments = vec![(0usize, vec![0, 1])];
            for (p, frac) in fractions {
                let count = ((avail as f64 * frac).round() as usize)
                    .max(1)
                    .min(cores - next);
                assignments.push((p, (next..next + count).collect()));
                next += count;
            }
            (
                SchedModel::Partitioned {
                    assignments: assignments.clone(),
                },
                assignments,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(rate: f64, scheme: PartitionScheme) -> MicroservicesResult {
        let mut cfg = MicroservicesConfig::new(rate, scheme);
        cfg.requests = 4;
        cfg.batches = 2;
        cfg.time_scale = 0.01; // ~54 ms LLaMA inference
        cfg.machine = Machine::small_numa(16, 2);
        cfg.yield_slice = SimTime::from_micros(200);
        run_microservices(&cfg)
    }

    #[test]
    fn all_schemes_complete_and_report_latencies() {
        for scheme in PartitionScheme::ALL {
            let r = quick(0.5, scheme);
            assert!(!r.report.deadlocked, "{scheme:?} deadlocked");
            assert_eq!(r.request_timeline.len(), 4);
            assert!(r.mean_latency > SimTime::ZERO);
            assert!(r.throughput > 0.0);
        }
    }

    #[test]
    fn latency_grows_with_request_rate_for_bl_none() {
        let slow = quick(0.05, PartitionScheme::BlNone);
        let fast = quick(5.0, PartitionScheme::BlNone);
        assert!(
            fast.mean_latency.as_secs_f64() >= slow.mean_latency.as_secs_f64() * 0.95,
            "higher request rates must not reduce latency: {} vs {}",
            fast.mean_latency,
            slow.mean_latency
        );
    }

    #[test]
    fn sched_coop_handles_overload_at_least_as_well_as_equal_partitioning() {
        let coop = quick(5.0, PartitionScheme::SchedCoop);
        let bleq = quick(5.0, PartitionScheme::BlEq);
        assert!(
            coop.mean_latency.as_secs_f64() <= bleq.mean_latency.as_secs_f64() * 1.1,
            "SCHED_COOP ({}) should not lose to the rigid equal partitioning ({})",
            coop.mean_latency,
            bleq.mean_latency
        );
    }

    #[test]
    fn sequential_baseline_uses_single_threaded_inference() {
        let seq = quick(0.05, PartitionScheme::BlNoneSeq);
        let par = quick(0.05, PartitionScheme::BlNone);
        // At low rates, sequential inference must be slower per request.
        assert!(
            seq.mean_latency > par.mean_latency,
            "sequential inference should have higher latency at low rates: {} vs {}",
            seq.mean_latency,
            par.mean_latency
        );
    }

    #[test]
    fn model_constants_match_paper() {
        assert_eq!(Model::Llama.ideal_threads(), 28);
        assert_eq!(Model::Gpt2.ideal_threads(), 8);
        assert_eq!(Model::Roberta.ideal_threads(), 8);
        assert_eq!(Model::Llama.isolated_latency(), SimTime::from_millis(5400));
        assert_eq!(PartitionScheme::ALL.len(), 5);
        assert_eq!(PartitionScheme::SchedCoop.label(), "sched_coop");
    }
}
