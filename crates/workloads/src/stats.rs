//! Small summary-statistics helpers used by benchmark harnesses.

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation (0.0 for fewer than two values).
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Percentile by nearest-rank (p in [0, 100]); 0.0 for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Geometric mean (0.0 for an empty slice; ignores non-positive entries).
pub fn geomean(values: &[f64]) -> f64 {
    let positives: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).collect();
    if positives.is_empty() {
        return 0.0;
    }
    (positives.iter().map(|v| v.ln()).sum::<f64>() / positives.len() as f64).exp()
}

/// Speedup of `new` over `baseline` (values are "higher is better" throughputs).
pub fn speedup(baseline: f64, new: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        new / baseline
    }
}

/// Slowdown of a co-run time versus the solo time (values are "lower is better"
/// durations): `corun / solo`, so `1.0` means no interference and `2.0` means the
/// workload took twice as long next to its co-runners. Returns 0.0 when the solo
/// baseline is missing or non-positive.
pub fn slowdown(solo: f64, corun: f64) -> f64 {
    if solo <= 0.0 {
        0.0
    } else {
        corun / solo
    }
}

/// Jain fairness index of a set of per-process allocations or progress rates:
/// `(Σx)² / (n · Σx²)`. 1.0 means perfectly even; `1/n` means one process got
/// everything. By convention an empty slice scores 0.0 and a single element 1.0
/// (one process is trivially treated fairly).
pub fn jain_fairness(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values.iter().sum();
    let sq_sum: f64 = values.iter().map(|v| v * v).sum();
    if sq_sum <= 0.0 {
        // All-zero allocations: everyone got the same (nothing).
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sq_sum)
}

/// Summary bundle of a latency/duration sample: count, mean/stddev and the percentile
/// points the scenario reports use. All fields are 0.0/0 for an empty sample.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarize a sample. Empty slices produce the all-zero summary; a single element
    /// reports that element for every percentile point.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary::default();
        }
        Summary {
            count: values.len(),
            mean: mean(values),
            stddev: stddev(values),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            p50: percentile(values, 50.0),
            p90: percentile(values, 90.0),
            p99: percentile(values, 99.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert!((percentile(&v, 50.0) - 50.0).abs() <= 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn geometric_mean_and_speedup() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(speedup(2.0, 4.0), 2.0);
        assert_eq!(speedup(0.0, 4.0), 0.0);
    }

    #[test]
    fn slowdown_is_corun_over_solo() {
        assert_eq!(slowdown(2.0, 4.0), 2.0);
        assert_eq!(slowdown(4.0, 4.0), 1.0);
        assert_eq!(slowdown(0.0, 4.0), 0.0);
        assert_eq!(slowdown(-1.0, 4.0), 0.0);
    }

    #[test]
    fn jain_fairness_bounds() {
        // Perfectly even.
        assert!((jain_fairness(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        // One process hogs everything: 1/n.
        assert!((jain_fairness(&[6.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        // Monotone between the extremes.
        let skewed = jain_fairness(&[4.0, 1.0, 1.0]);
        assert!(skewed > 1.0 / 3.0 && skewed < 1.0, "skewed {skewed}");
    }

    #[test]
    fn jain_fairness_edge_cases() {
        assert_eq!(jain_fairness(&[]), 0.0);
        assert_eq!(jain_fairness(&[7.0]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn summary_of_sample() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&v);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.0).abs() <= 1.0);
        assert!((s.p90 - 90.0).abs() <= 1.0);
        assert!((s.p99 - 99.0).abs() <= 1.0);
        assert!(s.stddev > 0.0);
    }

    #[test]
    fn summary_edge_cases() {
        assert_eq!(Summary::of(&[]), Summary::default());
        let one = Summary::of(&[4.5]);
        assert_eq!(one.count, 1);
        assert_eq!(one.mean, 4.5);
        assert_eq!(one.stddev, 0.0);
        assert_eq!(one.min, 4.5);
        assert_eq!(one.max, 4.5);
        assert_eq!(one.p50, 4.5);
        assert_eq!(one.p99, 4.5);
    }
}
