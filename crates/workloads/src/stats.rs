//! Small summary-statistics helpers used by benchmark harnesses.

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation (0.0 for fewer than two values).
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Percentile by nearest-rank (p in [0, 100]); 0.0 for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Geometric mean (0.0 for an empty slice; ignores non-positive entries).
pub fn geomean(values: &[f64]) -> f64 {
    let positives: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).collect();
    if positives.is_empty() {
        return 0.0;
    }
    (positives.iter().map(|v| v.ln()).sum::<f64>() / positives.len() as f64).exp()
}

/// Speedup of `new` over `baseline` (values are "higher is better" throughputs).
pub fn speedup(baseline: f64, new: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        new / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert!((percentile(&v, 50.0) - 50.0).abs() <= 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn geometric_mean_and_speedup() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(speedup(2.0, 4.0), 2.0);
        assert_eq!(speedup(0.0, 4.0), 0.0);
    }
}
