//! Simulated nested matmul — the workload behind the Figure 3 heatmaps (§5.3).
//!
//! The real experiment runs a 32768² matmul on a 56-core socket for ≥60 s per configuration
//! and reports MOPS/s; here the same *structure* is reconstructed on the discrete-event
//! simulator: `max_parallel_tasks` outer workers (the task-level parallelism exposed by the
//! chosen task size) each execute a stream of tile-gemm tasks, and every task opens an inner
//! team of `inner_threads` threads that compute their share of the tile and synchronize on
//! the BLAS end-of-kernel barrier. The four evaluated variants differ exactly as in the
//! paper:
//!
//! | Variant | Scheduler | BLAS barrier |
//! |---|---|---|
//! | `Original` | Linux fair | busy-wait, never yields |
//! | `Baseline` | Linux fair | busy-wait + `sched_yield` (the one-line fix) |
//! | `Manual` | SCHED_COOP | blocking (direct nOS-V primitives) |
//! | `SchedCoop` | SCHED_COOP | busy-wait + yield (yield becomes a scheduling point) |
//!
//! Throughput is reported as simulated MFLOP/s so the relative shape (which configurations
//! win, where oversubscription collapses) can be compared with the paper's heatmaps; the
//! absolute values depend on the assumed per-core FLOP rate, not on a real testbed.

use usf_simsched::{
    BarrierWaitKind, Engine, Machine, Program, ProgramRef, SchedModel, SimReport, SimTime,
};

/// The four software stacks of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulVariant {
    /// Unmodified busy-wait barriers under the Linux fair scheduler (Figure 2d / 3d).
    Original,
    /// Busy-wait barriers with the yield fix under the Linux fair scheduler (Figure 2a / 3a).
    Baseline,
    /// Manual nOS-V integration: blocking primitives under SCHED_COOP (Figure 2b / 3b).
    Manual,
    /// Seamless glibcv/USF integration under SCHED_COOP (Figure 2c / 3c).
    SchedCoop,
}

impl MatmulVariant {
    /// All variants in the order of Figure 3.
    pub const ALL: [MatmulVariant; 4] = [
        MatmulVariant::Baseline,
        MatmulVariant::Manual,
        MatmulVariant::SchedCoop,
        MatmulVariant::Original,
    ];

    /// Label used in the generated heatmaps.
    pub fn label(&self) -> &'static str {
        match self {
            MatmulVariant::Original => "original",
            MatmulVariant::Baseline => "baseline",
            MatmulVariant::Manual => "manual",
            MatmulVariant::SchedCoop => "sched_coop",
        }
    }

    fn sched_model(&self) -> SchedModel {
        match self {
            MatmulVariant::Original | MatmulVariant::Baseline => SchedModel::Fair,
            MatmulVariant::Manual | MatmulVariant::SchedCoop => SchedModel::coop_default(),
        }
    }

    fn barrier_kind(&self, yield_slice: SimTime) -> BarrierWaitKind {
        match self {
            MatmulVariant::Original => BarrierWaitKind::Spin,
            MatmulVariant::Baseline | MatmulVariant::SchedCoop => {
                BarrierWaitKind::SpinYield { slice: yield_slice }
            }
            MatmulVariant::Manual => BarrierWaitKind::Block,
        }
    }
}

/// Configuration of one cell of the Figure 3 heatmap.
#[derive(Debug, Clone)]
pub struct SimMatmulConfig {
    /// Matrix dimension `N`.
    pub matrix_size: usize,
    /// Tile dimension `TS`; the outer parallelism is `(N/TS)²` capped by `max_outer_workers`.
    pub task_size: usize,
    /// Inner (BLAS) threads per task.
    pub inner_threads: usize,
    /// Software-stack variant.
    pub variant: MatmulVariant,
    /// Simulated machine (the paper uses one 56-core socket).
    pub machine: Machine,
    /// Assumed per-core throughput in FLOP/s (only scales absolute numbers).
    pub flops_per_core: f64,
    /// Tasks executed per outer worker (the steady-state window that is simulated).
    pub tasks_per_worker: usize,
    /// Cap on the number of simulated outer workers (keeps huge configurations tractable;
    /// the throughput estimate is unaffected because the extra workers would only queue).
    pub max_outer_workers: usize,
    /// Busy-wait yield period (the `sched_yield` granularity of the patched barriers).
    pub yield_slice: SimTime,
}

impl SimMatmulConfig {
    /// A Figure 3 cell with the defaults used by the bench harness.
    pub fn new(
        matrix_size: usize,
        task_size: usize,
        inner_threads: usize,
        variant: MatmulVariant,
    ) -> Self {
        SimMatmulConfig {
            matrix_size,
            task_size,
            inner_threads,
            variant,
            machine: Machine::marenostrum5_socket(),
            flops_per_core: 40e9,
            tasks_per_worker: 2,
            max_outer_workers: 512,
            yield_slice: SimTime::from_micros(200),
        }
    }

    /// The outer parallelism exposed by this configuration, `(N/TS)²`.
    pub fn max_parallel_tasks(&self) -> usize {
        let nb = self.matrix_size / self.task_size;
        nb * nb
    }
}

/// Result of one simulated heatmap cell.
#[derive(Debug, Clone)]
pub struct SimMatmulResult {
    /// Simulated throughput in MFLOP/s.
    pub mflops: f64,
    /// Simulated makespan of the steady-state window.
    pub makespan: SimTime,
    /// Whether the configuration deadlocked (possible for `Original` under SCHED_COOP-style
    /// policies or for timed-out configurations, mirroring the white squares of Figure 3).
    pub deadlocked: bool,
    /// The full simulator report (metrics, traces).
    pub report: SimReport,
}

/// Build and run the simulation for one heatmap cell.
pub fn run_sim_matmul(cfg: &SimMatmulConfig) -> SimMatmulResult {
    let ts = cfg.task_size.max(1);
    let inner = cfg.inner_threads.max(1);
    let outer_workers = cfg.max_parallel_tasks().clamp(1, cfg.max_outer_workers);

    // One tile update is a TS³ gemm; each inner thread computes an equal share.
    let task_flops = 2.0 * (ts as f64).powi(3);
    let per_thread_secs = task_flops / (inner as f64) / cfg.flops_per_core;
    let per_thread = SimTime::from_secs_f64(per_thread_secs);
    let barrier_kind = cfg.variant.barrier_kind(cfg.yield_slice);

    let mut engine = Engine::new(cfg.machine.clone(), &cfg.variant.sched_model());
    let process = engine.add_process("matmul", 1.0);
    // Cap the simulation generously: badly oversubscribed Original configurations take very
    // long (they are the paper's timed-out white squares).
    engine.set_max_sim_time(SimTime::from_secs(3600));

    let mut next_barrier_id: u64 = 1;
    for w in 0..outer_workers {
        // Each outer worker executes `tasks_per_worker` tile tasks back to back. Every task
        // opens a fresh inner team (the nested OpenMP region inside the BLAS call): spawn
        // `inner - 1` children, compute the local share, meet the BLAS barrier, join.
        let mut prog = Program::new(format!("outer-{w}"));
        for _ in 0..cfg.tasks_per_worker.max(1) {
            let barrier_id = next_barrier_id;
            next_barrier_id += 1;
            if inner > 1 {
                let child = Program::new("blas-worker")
                    .compute(per_thread)
                    .barrier(barrier_id, inner, barrier_kind)
                    .build();
                prog = prog
                    .spawn(ProgramRef::clone(&child), process, inner - 1)
                    .compute(per_thread)
                    .barrier(barrier_id, inner, barrier_kind)
                    .join_children();
            } else {
                prog = prog.compute(per_thread);
            }
        }
        engine.add_thread(process, prog.build());
    }

    let report = engine.run();
    let total_flops = task_flops * (outer_workers * cfg.tasks_per_worker.max(1)) as f64;
    let secs = report.makespan.as_secs_f64().max(1e-9);
    let mflops = if report.deadlocked {
        0.0
    } else {
        total_flops / secs / 1e6
    };
    SimMatmulResult {
        mflops,
        makespan: report.makespan,
        deadlocked: report.deadlocked,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(variant: MatmulVariant, inner: usize, task_size: usize) -> SimMatmulConfig {
        let mut c = SimMatmulConfig::new(2048, task_size, inner, variant);
        c.machine = Machine::small(8);
        c.machine.preemption_quantum = SimTime::from_millis(4);
        c.max_outer_workers = 32;
        c
    }

    #[test]
    fn undersubscribed_configs_perform_similarly_across_variants() {
        // 1 inner thread, few outer tasks: nothing to fight over, all variants close.
        let results: Vec<f64> = MatmulVariant::ALL
            .iter()
            .map(|v| run_sim_matmul(&cfg(*v, 1, 1024)).mflops)
            .collect();
        let max = results.iter().cloned().fold(0.0, f64::max);
        let min = results.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min > 0.0);
        assert!(
            max / min < 1.2,
            "variants should be within 20% when not oversubscribed: {results:?}"
        );
    }

    #[test]
    fn oversubscription_hurts_original_most() {
        // 8 cores, 16 outer workers × 4 inner threads = 64 busy threads.
        let original = run_sim_matmul(&cfg(MatmulVariant::Original, 4, 512));
        let baseline = run_sim_matmul(&cfg(MatmulVariant::Baseline, 4, 512));
        let coop = run_sim_matmul(&cfg(MatmulVariant::SchedCoop, 4, 512));
        assert!(!baseline.deadlocked && !coop.deadlocked);
        assert!(
            baseline.mflops > original.mflops,
            "yielding busy-wait must beat pure spinning under oversubscription: baseline {} vs original {}",
            baseline.mflops,
            original.mflops
        );
        assert!(
            coop.mflops >= baseline.mflops * 0.95,
            "SCHED_COOP must be at least competitive with the baseline: coop {} vs baseline {}",
            coop.mflops,
            baseline.mflops
        );
    }

    #[test]
    fn sched_coop_and_manual_do_not_deadlock() {
        for v in [MatmulVariant::SchedCoop, MatmulVariant::Manual] {
            let r = run_sim_matmul(&cfg(v, 4, 512));
            assert!(!r.deadlocked, "{v:?} must complete");
            assert!(r.mflops > 0.0);
        }
    }

    #[test]
    fn max_parallel_tasks_formula() {
        let c = SimMatmulConfig::new(32768, 16384, 2, MatmulVariant::Baseline);
        assert_eq!(c.max_parallel_tasks(), 4);
        let c = SimMatmulConfig::new(32768, 512, 2, MatmulVariant::Baseline);
        assert_eq!(c.max_parallel_tasks(), 4096);
    }
}
