//! Affinity management — hints, not commands (§4.3.2).
//!
//! Under USF, application attempts to change thread affinity (`pthread_setaffinity_np`,
//! `sched_setaffinity`) would interfere with the scheduler's fine-grained thread placement,
//! so glibcv *stores* the requested mask in the thread object and returns it on queries, but
//! never applies it. The same contract is reproduced here: [`set_affinity_hint`] records the
//! mask for the current thread (keyed by its task when attached, by its `ThreadId`
//! otherwise) and [`get_affinity_hint`] echoes it back, while the scheduler keeps choosing
//! the actual placement. The real placement is observable through
//! [`current_scheduler_core`].

use crate::current::current;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;
use usf_nosv::CoreId;

/// A set of cores, the `cpu_set_t` analog.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CpuSet {
    words: Vec<u64>,
}

impl CpuSet {
    /// Empty set.
    pub fn new() -> Self {
        CpuSet::default()
    }

    /// Set containing a single core.
    pub fn single(core: CoreId) -> Self {
        let mut s = CpuSet::new();
        s.set(core);
        s
    }

    /// Set containing cores `0..n`.
    pub fn first_n(n: usize) -> Self {
        let mut s = CpuSet::new();
        for c in 0..n {
            s.set(c);
        }
        s
    }

    /// Add a core to the set.
    pub fn set(&mut self, core: CoreId) {
        let word = core / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (core % 64);
    }

    /// Remove a core from the set.
    pub fn clear(&mut self, core: CoreId) {
        let word = core / 64;
        if word < self.words.len() {
            self.words[word] &= !(1u64 << (core % 64));
        }
    }

    /// Whether the set contains a core.
    pub fn is_set(&self, core: CoreId) -> bool {
        let word = core / 64;
        word < self.words.len() && (self.words[word] >> (core % 64)) & 1 == 1
    }

    /// Number of cores in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Iterate over the cores in the set, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            (0..64)
                .filter(move |b| (w >> b) & 1 == 1)
                .map(move |b| wi * 64 + b)
        })
    }
}

impl FromIterator<CoreId> for CpuSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut s = CpuSet::new();
        for c in iter {
            s.set(c);
        }
        s
    }
}

/// Key identifying "the current thread" in the hint table: its task id when attached (the
/// paper's tid → task hash table), its OS thread id otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum HintKey {
    Task(u64),
    Thread(std::thread::ThreadId),
}

fn current_key() -> HintKey {
    match current() {
        Some(ctx) => HintKey::Task(ctx.task.id()),
        None => HintKey::Thread(std::thread::current().id()),
    }
}

fn hint_table() -> &'static Mutex<HashMap<HintKey, CpuSet>> {
    static TABLE: OnceLock<Mutex<HashMap<HintKey, CpuSet>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Record an affinity request for the current thread. The scheduler ignores it (it is a
/// *hint*); queries echo it back. Returns the previously stored hint, if any.
///
/// When the calling thread is attached to an instance, the mask is validated against the
/// instance topology first: cores at or beyond the core count are dropped (with a debug
/// log), so a query never echoes back cores that cannot exist — previously such dead
/// hints round-tripped silently. Unattached threads have no topology to validate against
/// and store the mask verbatim.
pub fn set_affinity_hint(set: CpuSet) -> Option<CpuSet> {
    let set = match current() {
        Some(ctx) => {
            let cores = ctx.nosv.scheduler().topology().num_cores();
            let clamped: CpuSet = set.iter().filter(|&c| c < cores).collect();
            if clamped != set && cfg!(debug_assertions) {
                eprintln!(
                    "usf: affinity hint clamped to the {cores}-core instance topology \
                     ({} of {} requested cores kept)",
                    clamped.count(),
                    set.count()
                );
            }
            clamped
        }
        None => set,
    };
    hint_table().lock().insert(current_key(), set)
}

/// The affinity previously requested by the current thread, if any. This is what glibcv
/// returns from `pthread_getaffinity_np` to preserve application compatibility.
pub fn get_affinity_hint() -> Option<CpuSet> {
    hint_table().lock().get(&current_key()).cloned()
}

/// Remove the stored hint for the current thread.
pub fn clear_affinity_hint() -> Option<CpuSet> {
    hint_table().lock().remove(&current_key())
}

/// The core the scheduler actually placed the current thread on (only meaningful for
/// attached threads).
pub fn current_scheduler_core() -> Option<CoreId> {
    current().and_then(|ctx| ctx.task.current_core())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Usf;

    #[test]
    fn cpuset_basic_operations() {
        let mut s = CpuSet::new();
        assert!(s.is_empty());
        s.set(0);
        s.set(63);
        s.set(64);
        s.set(130);
        assert_eq!(s.count(), 4);
        assert!(s.is_set(63));
        assert!(s.is_set(130));
        assert!(!s.is_set(1));
        s.clear(63);
        assert!(!s.is_set(63));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 130]);
    }

    #[test]
    fn cpuset_constructors() {
        assert_eq!(CpuSet::single(5).iter().collect::<Vec<_>>(), vec![5]);
        assert_eq!(CpuSet::first_n(3).count(), 3);
        let s: CpuSet = [1usize, 3, 5].into_iter().collect();
        assert_eq!(s.count(), 3);
        assert!(s.is_set(3));
    }

    #[test]
    fn hints_are_stored_and_echoed_not_applied() {
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("affinity-test");
        let h = p.spawn(|| {
            // Ask for core 1 — inside the 2-core instance, so it round-trips verbatim.
            let requested = CpuSet::single(1);
            set_affinity_hint(requested.clone());
            let echoed = get_affinity_hint().unwrap();
            let actual = current_scheduler_core().unwrap();
            (requested == echoed, actual)
        });
        let (echoed_ok, actual) = h.join().unwrap();
        assert!(echoed_ok, "the stored hint must be echoed back verbatim");
        assert!(actual < 2, "the scheduler placement ignores the hint");
        usf.shutdown();
    }

    #[test]
    fn attached_hints_are_clamped_to_the_instance_topology() {
        // Regression: a hint naming cores >= the topology size used to round-trip
        // silently — a dead hint no scheduler could ever honour. It is now clamped.
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("affinity-clamp-test");
        let h = p.spawn(|| {
            let requested: CpuSet = [0usize, 1, 57, 130].into_iter().collect();
            set_affinity_hint(requested);
            get_affinity_hint().unwrap()
        });
        let echoed = h.join().unwrap();
        assert_eq!(
            echoed.iter().collect::<Vec<_>>(),
            vec![0, 1],
            "cores beyond the 2-core topology must be dropped"
        );
        usf.shutdown();
    }

    #[test]
    fn hints_are_per_thread() {
        set_affinity_hint(CpuSet::single(1));
        let other = std::thread::spawn(get_affinity_hint).join().unwrap();
        assert!(
            other.is_none(),
            "another thread must not see this thread's hint"
        );
        assert_eq!(get_affinity_hint(), Some(CpuSet::single(1)));
        clear_affinity_hint();
        assert!(get_affinity_hint().is_none());
    }

    #[test]
    fn scheduler_core_is_none_for_unattached_threads() {
        assert!(current_scheduler_core().is_none());
    }
}
