//! Timed readiness polling — the poll/epoll integration (§4.3.4).
//!
//! glibcv cannot turn arbitrary kernel readiness waits into scheduling points, so timed
//! `poll`/`epoll` variants are rewritten as a loop: perform a non-blocking check with the
//! original API, then `nosv_waitfor` for a short slice (5 ms by default) so the core is
//! handed to another task, and repeat until the user timeout expires or an event occurs.
//! [`poll_until`] reproduces that loop for any user-supplied readiness predicate.

use crate::current::current;
use std::time::{Duration, Instant};

/// Result of [`poll_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollOutcome {
    /// The predicate became true before the timeout.
    Ready,
    /// The timeout expired.
    TimedOut,
}

/// Repeatedly evaluate `ready` until it returns `true` or `timeout` expires, releasing the
/// caller's virtual core between checks in slices of `slice` (5 ms when `None`, matching the
/// paper's default). Non-attached threads sleep between checks instead.
pub fn poll_until(
    mut ready: impl FnMut() -> bool,
    timeout: Duration,
    slice: Option<Duration>,
) -> PollOutcome {
    let slice = slice.unwrap_or(Duration::from_millis(5));
    let deadline = Instant::now() + timeout;
    let ctx = current();
    loop {
        if ready() {
            return PollOutcome::Ready;
        }
        let now = Instant::now();
        if now >= deadline {
            return PollOutcome::TimedOut;
        }
        let wait = slice.min(deadline - now);
        match &ctx {
            Some(c) => {
                let _ = c.nosv.scheduler().waitfor(&c.task, wait);
            }
            None => std::thread::sleep(wait),
        }
    }
}

/// Convenience wrapper: poll an already-armed readiness flag forever (no timeout), checking
/// every `slice`. Returns once the predicate is true.
pub fn poll_forever(mut ready: impl FnMut() -> bool, slice: Option<Duration>) {
    let slice = slice.unwrap_or(Duration::from_millis(5));
    let ctx = current();
    loop {
        if ready() {
            return;
        }
        match &ctx {
            Some(c) => {
                let _ = c.nosv.scheduler().waitfor(&c.task, slice);
            }
            None => std::thread::sleep(slice),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Usf;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn ready_immediately() {
        assert_eq!(
            poll_until(|| true, Duration::from_millis(100), None),
            PollOutcome::Ready
        );
    }

    #[test]
    fn times_out_when_never_ready() {
        let start = Instant::now();
        let out = poll_until(
            || false,
            Duration::from_millis(30),
            Some(Duration::from_millis(5)),
        );
        assert_eq!(out, PollOutcome::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn becomes_ready_midway() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let setter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            f2.store(true, Ordering::SeqCst);
        });
        let out = poll_until(
            || flag.load(Ordering::SeqCst),
            Duration::from_secs(5),
            Some(Duration::from_millis(2)),
        );
        assert_eq!(out, PollOutcome::Ready);
        setter.join().unwrap();
    }

    #[test]
    fn cooperative_poll_releases_the_core_between_checks() {
        // One core: while the poller waits for the flag, the other worker must be able to
        // run (and it is the one that sets the flag), so the poll can only succeed if the
        // waitfor slices actually release the core.
        let usf = Usf::builder().cores(1).build();
        let p = usf.process("poll-test");
        let flag = Arc::new(AtomicBool::new(false));
        let f1 = Arc::clone(&flag);
        let poller = p.spawn(move || {
            poll_until(
                || f1.load(Ordering::SeqCst),
                Duration::from_secs(10),
                Some(Duration::from_millis(2)),
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        let f2 = Arc::clone(&flag);
        let setter = p.spawn(move || f2.store(true, Ordering::SeqCst));
        setter.join().unwrap();
        assert_eq!(poller.join().unwrap(), PollOutcome::Ready);
        usf.shutdown();
    }

    #[test]
    fn poll_forever_returns_when_ready() {
        let mut calls = 0;
        poll_forever(
            || {
                calls += 1;
                calls >= 3
            },
            Some(Duration::from_millis(1)),
        );
        assert_eq!(calls, 3);
    }
}
