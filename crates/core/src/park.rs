//! Low-level blocking building blocks shared by every USF synchronization primitive.
//!
//! The paper's Listing 1 pattern is: *put the calling thread's task in a FIFO wait queue,
//! then `nosv_pause()`; the release path pops a task and `nosv_submit()`s it*. The
//! [`Waiter`] type encapsulates one such blocking episode and transparently degrades to
//! plain OS thread parking when the calling thread is not attached to USF (the "glibcv
//! disabled" path), so the very same primitive implementations serve both the baseline and
//! the SCHED_COOP configurations of the evaluation.
//!
//! A `Waiter` is **single use**: it represents one park/wake pair. Primitives create a fresh
//! waiter per blocking episode and guarantee that [`Waiter::wake`] is called at most once
//! (timed waits use the claim protocol described on [`Waiter::wait_deadline`]).

use crate::current::{current, CurrentCtx};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use usf_nosv::{NosvInstance, TaskRef};

/// How the owning thread blocks.
#[derive(Debug)]
enum Mode {
    /// The owner is a USF task: block via `nosv_pause`, wake via `nosv_submit`.
    Usf { task: TaskRef, nosv: NosvInstance },
    /// The owner is a plain OS thread: block via `std::thread::park`.
    Os { thread: std::thread::Thread },
}

/// One blocking episode of one thread. See the module documentation.
#[derive(Debug)]
pub struct Waiter {
    mode: Mode,
    signalled: AtomicBool,
    woken_once: AtomicBool,
}

impl Waiter {
    /// Create a waiter for the calling thread, choosing the cooperative or the OS path
    /// depending on whether the thread is attached to USF.
    pub fn new_for_current() -> Arc<Waiter> {
        let mode = match current() {
            Some(CurrentCtx { task, nosv, .. }) => Mode::Usf { task, nosv },
            None => Mode::Os {
                thread: std::thread::current(),
            },
        };
        Arc::new(Waiter {
            mode,
            signalled: AtomicBool::new(false),
            woken_once: AtomicBool::new(false),
        })
    }

    /// Whether this waiter uses the cooperative (USF) path.
    pub fn is_cooperative(&self) -> bool {
        matches!(self.mode, Mode::Usf { .. })
    }

    /// Whether [`Waiter::wake`] has been called.
    pub fn is_signalled(&self) -> bool {
        self.signalled.load(Ordering::Acquire)
    }

    /// Wake the owning thread. Must be called at most once per waiter (extra calls are
    /// ignored). This is the `nosv_submit` side of Listing 1.
    pub fn wake(&self) {
        self.signalled.store(true, Ordering::Release);
        if self.woken_once.swap(true, Ordering::AcqRel) {
            return;
        }
        match &self.mode {
            Mode::Usf { task, nosv } => nosv.submit(task),
            Mode::Os { thread } => thread.unpark(),
        }
    }

    /// Block the owning thread until [`Waiter::wake`] is called. This is the `nosv_pause`
    /// side of Listing 1. Must be called by the thread that created the waiter.
    pub fn wait(&self) {
        match &self.mode {
            Mode::Usf { task, nosv } => loop {
                // Pause first: it consumes exactly one submit (either already counted as a
                // pending wake-up or arriving later), so a wake that raced ahead of us is
                // never lost and never leaks into a later blocking episode.
                nosv.scheduler().pause(task);
                if self.signalled.load(Ordering::Acquire) {
                    return;
                }
            },
            Mode::Os { .. } => {
                while !self.signalled.load(Ordering::Acquire) {
                    std::thread::park();
                }
            }
        }
    }

    /// Block until [`Waiter::wake`] or until `deadline`. Returns `true` if the waiter was
    /// signalled, `false` on timeout.
    ///
    /// **Claim protocol**: on `false`, the caller must check whether the waiter is still in
    /// the primitive's wait queue (under the primitive's lock). If it is, remove it — no
    /// wake will ever come. If it is *not*, a waker has already claimed it; the caller must
    /// treat the wait as signalled and call [`Waiter::consume_wake`] to absorb the
    /// (possibly still in-flight) wake-up so it cannot leak into a later blocking episode.
    pub fn wait_deadline(&self, deadline: Instant) -> bool {
        match &self.mode {
            Mode::Usf { task, nosv } => loop {
                if self.signalled.load(Ordering::Acquire) {
                    // The wake's submit was consumed by the waitfor that returned just
                    // before this check (the flag is set before the submit is issued).
                    return true;
                }
                let now = Instant::now();
                if now >= deadline {
                    return false;
                }
                let _ = nosv.scheduler().waitfor(task, deadline - now);
            },
            Mode::Os { .. } => loop {
                if self.signalled.load(Ordering::Acquire) {
                    return true;
                }
                let now = Instant::now();
                if now >= deadline {
                    return false;
                }
                std::thread::park_timeout(deadline - now);
            },
        }
    }

    /// Absorb a wake-up that was issued (or is about to be issued) by a waker that claimed
    /// this waiter after its timed wait expired. See [`Waiter::wait_deadline`].
    pub fn consume_wake(&self) {
        match &self.mode {
            Mode::Usf { task, nosv } => {
                // Exactly one submit is owed to us; pause() returns as soon as it has been
                // delivered (immediately, if it already arrived as a counted wake-up).
                nosv.scheduler().pause(task);
            }
            Mode::Os { .. } => {
                // A stale unpark token is harmless for OS threads.
            }
        }
    }
}

// -------------------------------------------------------------------------------------------
// Event
// -------------------------------------------------------------------------------------------

/// A one-shot event: threads wait until some other thread sets it. Used for masked joins
/// (§4.3.1) and as a building block for wait-groups.
#[derive(Debug, Default)]
pub struct Event {
    state: Mutex<EventState>,
}

#[derive(Debug, Default)]
struct EventState {
    set: bool,
    waiters: Vec<Arc<Waiter>>,
}

impl Event {
    /// Create an unset event.
    pub fn new() -> Self {
        Event::default()
    }

    /// Whether the event has been set.
    pub fn is_set(&self) -> bool {
        self.state.lock().set
    }

    /// Set the event and wake every waiter.
    pub fn set(&self) {
        let waiters = {
            let mut st = self.state.lock();
            st.set = true;
            std::mem::take(&mut st.waiters)
        };
        for w in waiters {
            w.wake();
        }
    }

    /// Block until the event is set.
    pub fn wait(&self) {
        let waiter = {
            let mut st = self.state.lock();
            if st.set {
                return;
            }
            let w = Waiter::new_for_current();
            st.waiters.push(Arc::clone(&w));
            w
        };
        waiter.wait();
    }

    /// Block until the event is set or `timeout` elapses. Returns `true` if the event is set.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let waiter = {
            let mut st = self.state.lock();
            if st.set {
                return true;
            }
            let w = Waiter::new_for_current();
            st.waiters.push(Arc::clone(&w));
            w
        };
        if waiter.wait_deadline(deadline) {
            return true;
        }
        // Claim protocol: if we are still queued, remove ourselves and report the timeout;
        // otherwise a set() already claimed us and its wake must be absorbed.
        let mut st = self.state.lock();
        if let Some(pos) = st.waiters.iter().position(|w| Arc::ptr_eq(w, &waiter)) {
            st.waiters.remove(pos);
            false
        } else {
            drop(st);
            waiter.consume_wake();
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn os_waiter_wake_before_wait_is_not_lost() {
        let w = Waiter::new_for_current();
        assert!(!w.is_cooperative());
        w.wake();
        // Must return immediately.
        w.wait();
        assert!(w.is_signalled());
    }

    #[test]
    fn os_waiter_cross_thread_wake() {
        let w = Waiter::new_for_current();
        let w2 = Arc::clone(&w);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w2.wake();
        });
        w.wait();
        h.join().unwrap();
    }

    #[test]
    fn os_waiter_deadline_times_out() {
        let w = Waiter::new_for_current();
        let start = Instant::now();
        assert!(!w.wait_deadline(Instant::now() + Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn event_set_before_wait() {
        let e = Event::new();
        e.set();
        assert!(e.is_set());
        e.wait();
        assert!(e.wait_timeout(Duration::from_millis(1)));
    }

    #[test]
    fn event_wakes_multiple_waiters() {
        let e = Arc::new(Event::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || e.wait()));
        }
        std::thread::sleep(Duration::from_millis(20));
        e.set();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn event_wait_timeout_expires_cleanly() {
        let e = Event::new();
        assert!(!e.wait_timeout(Duration::from_millis(10)));
        // After a timed-out wait, a set still works and the queue holds no stale waiters.
        e.set();
        assert!(e.wait_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn usf_waiter_round_trip() {
        use crate::current::{clear_current, set_current, CurrentCtx};
        use usf_nosv::{NosvConfig, NosvInstance};

        let nosv = NosvInstance::new(NosvConfig::with_cores(1));
        let pid = nosv.register_process("p");
        let nosv2 = nosv.clone();
        let (tx, rx) = std::sync::mpsc::channel::<Arc<Waiter>>();
        let h = std::thread::spawn(move || {
            let handle = nosv2.attach(pid, Some("waiter"));
            set_current(CurrentCtx {
                task: handle.task().clone(),
                nosv: nosv2.clone(),
                process: pid,
            });
            let w = Waiter::new_for_current();
            assert!(w.is_cooperative());
            tx.send(Arc::clone(&w)).unwrap();
            w.wait(); // cooperative block: the core is handed back while waiting
            clear_current();
            handle.detach();
            7
        });
        let w = rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        w.wake();
        assert_eq!(h.join().unwrap(), 7);
    }
}
