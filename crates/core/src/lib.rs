//! `usf-core` — the **User-space Scheduling Framework (USF)** and its default cooperative
//! policy **SCHED_COOP**, reproduced from the PPoPP'26 paper *"Rethinking Thread Scheduling
//! under Oversubscription"* (Roca & Beltran).
//!
//! The paper implements USF by extending glibc ("glibcv"): `pthread_create` and every
//! blocking pthread API become scheduling points of a user-space scheduler built on the
//! nOS-V tasking library, so that participating threads
//!
//! * never preempt one another — a thread runs until it ends, blocks or yields,
//! * keep a single-core affinity chosen by the scheduler (affinity → NUMA → anywhere),
//! * are multiplexed across processes by a centralized scheduler with a per-process quantum
//!   evaluated only at scheduling points.
//!
//! A Rust crate cannot (portably or safely) interpose libc symbols, so this crate exposes the
//! equivalent functionality as a library API with the same structure as Figure 1 of the
//! paper — see `DESIGN.md` for the substitution table:
//!
//! * [`Usf`] / [`ProcessHandle`] — instance and process registration (the `USF_ENABLE`
//!   startup path, §4.3.3). Multiple [`ProcessHandle`]s attached to the same instance are
//!   the multi-process scenario; [`Usf::connect`] joins a named shared instance.
//! * [`thread`] — thread creation with the Dice–Kogan thread cache and masked joins
//!   (§4.3.1, the `pthread_create` extension).
//! * [`sync`] — mutex, condition variable, barrier (blocking and busy-wait), semaphore,
//!   rwlock, once, wait-group and channels following the Listing 1 pattern: a FIFO wait
//!   queue of tasks, `nosv_pause` on contention, `nosv_submit` on release (§4.3.4).
//! * [`timing`] / [`poll`] — sleep, yield and timed readiness polling (the `nosv_waitfor`
//!   integration).
//! * [`affinity`] — affinity changes treated as hints and echoed back to the caller
//!   (§4.3.2).
//! * [`exec`] — the "glibcv enabled / disabled" switch: every primitive in this crate also
//!   works for plain OS threads, so the same workload code runs under the baseline Linux
//!   scheduler (oversubscribed, preemptive) or under SCHED_COOP.
//!
//! # Quick start
//!
//! ```
//! use usf_core::prelude::*;
//!
//! // Build a USF instance managing 2 virtual cores with the SCHED_COOP policy.
//! let usf = Usf::builder().cores(2).build();
//! let proc_a = usf.process("app-a");
//!
//! // Spawn cooperative threads: they run when the scheduler grants them a core and never
//! // preempt each other.
//! let handles: Vec<_> = (0..4)
//!     .map(|i| proc_a.spawn(move || i * 10))
//!     .collect();
//! let sum: i32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
//! assert_eq!(sum, 0 + 10 + 20 + 30);
//! usf.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod affinity;
pub mod config;
pub mod current;
pub mod error;
pub mod exec;
pub mod park;
pub mod poll;
pub mod runtime;
pub mod sync;
pub mod thread;
pub mod timing;

pub use config::UsfConfig;
pub use error::UsfError;
pub use exec::{ExecJoinHandle, ExecMode};
pub use runtime::{ProcessHandle, Usf, UsfBuilder};
pub use thread::{JoinHandle, ThreadShutdownReport};

// Re-export the substrate types users commonly need.
pub use usf_nosv::{MetricsSnapshot, PolicyKind, Topology};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::config::UsfConfig;
    pub use crate::exec::{ExecJoinHandle, ExecMode};
    pub use crate::poll::poll_until;
    pub use crate::runtime::{ProcessHandle, Usf, UsfBuilder};
    pub use crate::sync::{Barrier, BusyBarrier, Condvar, Mutex, RwLock, Semaphore, WaitGroup};
    pub use crate::thread::JoinHandle;
    pub use crate::timing::{sleep, yield_now};
    pub use usf_nosv::{PolicyKind, Topology};
}
