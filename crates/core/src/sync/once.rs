//! Cooperative one-time initialization (`pthread_once`).

use crate::park::Waiter;
use parking_lot::Mutex as RawMutex;
use std::sync::Arc;

enum State {
    New,
    Running(Vec<Arc<Waiter>>),
    Done,
}

/// A one-time initialization cell: the first caller runs the closure; concurrent callers
/// block cooperatively until it finishes; later callers return immediately.
pub struct Once {
    state: RawMutex<State>,
}

impl Default for Once {
    fn default() -> Self {
        Once::new()
    }
}

impl Once {
    /// Create a new `Once` in the not-yet-run state.
    pub fn new() -> Self {
        Once {
            state: RawMutex::new(State::New),
        }
    }

    /// Whether the initialization has completed.
    pub fn is_completed(&self) -> bool {
        matches!(&*self.state.lock(), State::Done)
    }

    /// Run `f` exactly once across all callers; other callers block until it completes.
    ///
    /// Unlike `std::sync::Once`, a panicking initializer is not supported (it would poison
    /// the cell); initializers in this codebase are infallible.
    pub fn call_once(&self, f: impl FnOnce()) {
        // Fast path / state transition.
        let waiter = {
            let mut st = self.state.lock();
            match &mut *st {
                State::Done => return,
                State::New => {
                    *st = State::Running(Vec::new());
                    None
                }
                State::Running(waiters) => {
                    let w = Waiter::new_for_current();
                    waiters.push(Arc::clone(&w));
                    Some(w)
                }
            }
        };
        match waiter {
            Some(w) => {
                w.wait();
            }
            None => {
                f();
                let waiters = {
                    let mut st = self.state.lock();
                    let prev = std::mem::replace(&mut *st, State::Done);
                    match prev {
                        State::Running(ws) => ws,
                        _ => Vec::new(),
                    }
                };
                for w in waiters {
                    w.wake();
                }
            }
        }
    }
}

impl std::fmt::Debug for Once {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Once")
            .field("completed", &self.is_completed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Usf;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_exactly_once_sequentially() {
        let once = Once::new();
        let mut count = 0;
        once.call_once(|| count += 1);
        once.call_once(|| count += 1);
        assert_eq!(count, 1);
        assert!(once.is_completed());
    }

    #[test]
    fn runs_exactly_once_concurrently() {
        let once = Arc::new(Once::new());
        let count = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let once = Arc::clone(&once);
            let count = Arc::clone(&count);
            handles.push(std::thread::spawn(move || {
                once.call_once(|| {
                    // Make the window wide enough that others really race.
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    count.fetch_add(1, Ordering::SeqCst);
                });
                // After call_once returns, the initialization must be visible.
                assert_eq!(count.load(Ordering::SeqCst), 1);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cooperative_once_under_oversubscription() {
        let usf = Usf::builder().cores(1).build();
        let p = usf.process("once-test");
        let once = Arc::new(Once::new());
        let count = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let once = Arc::clone(&once);
                let count = Arc::clone(&count);
                p.spawn(move || {
                    once.call_once(|| {
                        count.fetch_add(1, Ordering::SeqCst);
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(count.load(Ordering::SeqCst), 1);
        usf.shutdown();
    }
}
