//! Cooperative reader–writer lock with FIFO fairness.

use crate::park::Waiter;
use parking_lot::Mutex as RawMutex;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    Write,
}

struct State {
    readers: usize,
    writer: bool,
    queue: VecDeque<(Kind, Arc<Waiter>)>,
}

/// A reader–writer lock whose contended paths are scheduling points.
///
/// Requests are served in FIFO order (consecutive readers are granted together), so writers
/// cannot be starved by a stream of readers and readers cannot be starved by writers.
pub struct RwLock<T: ?Sized> {
    state: RawMutex<State>,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Create a new unlocked lock.
    pub fn new(value: T) -> Self {
        RwLock {
            state: RawMutex::new(State {
                readers: 0,
                writer: false,
                queue: VecDeque::new(),
            }),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared (read) access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let waiter = {
            let mut st = self.state.lock();
            if !st.writer && st.queue.is_empty() {
                st.readers += 1;
                return RwLockReadGuard { lock: self };
            }
            let w = Waiter::new_for_current();
            st.queue.push_back((Kind::Read, Arc::clone(&w)));
            w
        };
        waiter.wait();
        RwLockReadGuard { lock: self }
    }

    /// Try to acquire shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let mut st = self.state.lock();
        if !st.writer && st.queue.is_empty() {
            st.readers += 1;
            Some(RwLockReadGuard { lock: self })
        } else {
            None
        }
    }

    /// Acquire exclusive (write) access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let waiter = {
            let mut st = self.state.lock();
            if !st.writer && st.readers == 0 && st.queue.is_empty() {
                st.writer = true;
                return RwLockWriteGuard { lock: self };
            }
            let w = Waiter::new_for_current();
            st.queue.push_back((Kind::Write, Arc::clone(&w)));
            w
        };
        waiter.wait();
        RwLockWriteGuard { lock: self }
    }

    /// Try to acquire exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let mut st = self.state.lock();
        if !st.writer && st.readers == 0 && st.queue.is_empty() {
            st.writer = true;
            Some(RwLockWriteGuard { lock: self })
        } else {
            None
        }
    }

    /// Current reader count (diagnostic; racy by nature).
    pub fn reader_count(&self) -> usize {
        self.state.lock().readers
    }

    /// Whether a writer currently holds the lock (diagnostic; racy by nature).
    pub fn is_write_locked(&self) -> bool {
        self.state.lock().writer
    }

    /// Get a mutable reference to the protected value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    fn unlock_read(&self) {
        let to_wake = {
            let mut st = self.state.lock();
            st.readers -= 1;
            if st.readers == 0 {
                Self::grant_next(&mut st)
            } else {
                Vec::new()
            }
        };
        for w in to_wake {
            w.wake();
        }
    }

    fn unlock_write(&self) {
        let to_wake = {
            let mut st = self.state.lock();
            st.writer = false;
            Self::grant_next(&mut st)
        };
        for w in to_wake {
            w.wake();
        }
    }

    /// Grant the lock to the head of the queue: one writer, or every leading reader.
    /// Called with the internal lock held and the lock free.
    fn grant_next(st: &mut State) -> Vec<Arc<Waiter>> {
        let mut to_wake = Vec::new();
        match st.queue.front().map(|(k, _)| *k) {
            Some(Kind::Write) => {
                let (_, w) = st.queue.pop_front().expect("front checked");
                st.writer = true;
                to_wake.push(w);
            }
            Some(Kind::Read) => {
                while matches!(st.queue.front(), Some((Kind::Read, _))) {
                    let (_, w) = st.queue.pop_front().expect("front checked");
                    st.readers += 1;
                    to_wake.push(w);
                }
            }
            None => {}
        }
        to_wake
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: readers have shared access while the guard is alive.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_read();
    }
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the writer has exclusive access while the guard is alive.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the writer has exclusive access while the guard is alive.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_write();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Usf;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn multiple_readers_coexist() {
        let l = RwLock::new(7);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        assert_eq!(l.reader_count(), 2);
        assert!(l.try_write().is_none());
        drop(r1);
        drop(r2);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn writer_excludes_readers() {
        let l = RwLock::new(0);
        let mut w = l.write();
        *w = 9;
        assert!(l.try_read().is_none());
        drop(w);
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn queued_writer_blocks_new_readers_fifo() {
        let l = Arc::new(RwLock::new(0));
        let r = l.read();
        // Writer queues behind the reader.
        let l2 = Arc::clone(&l);
        let writer = std::thread::spawn(move || {
            *l2.write() += 1;
        });
        // Wait until the writer is queued; a new reader must now queue behind it (FIFO), so
        // try_read must fail even though only readers currently hold the lock.
        while l.state.lock().queue.is_empty() {
            std::thread::yield_now();
        }
        assert!(
            l.try_read().is_none(),
            "FIFO: new readers queue behind a waiting writer"
        );
        drop(r);
        writer.join().unwrap();
        assert_eq!(*l.read(), 1);
    }

    #[test]
    fn concurrent_readers_and_writers_are_consistent() {
        let l = Arc::new(RwLock::new(0i64));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    *l.write() += 1;
                }
            }));
        }
        for _ in 0..3 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let v = *l.read();
                    assert!((0..=600).contains(&v));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 600);
    }

    #[test]
    fn cooperative_rwlock_with_oversubscription() {
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("rwlock-test");
        let l = Arc::new(RwLock::new(0i64));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let l = Arc::clone(&l);
            handles.push(p.spawn(move || {
                for _ in 0..100 {
                    *l.write() += 1;
                }
            }));
        }
        for _ in 0..4 {
            let l = Arc::clone(&l);
            handles.push(p.spawn(move || {
                for _ in 0..100 {
                    let _ = *l.read();
                    std::hint::spin_loop();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 200);
        usf.shutdown();
    }

    #[test]
    fn writer_waits_for_all_readers() {
        let l = Arc::new(RwLock::new(()));
        let r1 = l.read();
        let r2 = l.read();
        let l2 = Arc::clone(&l);
        let writer = std::thread::spawn(move || {
            let _w = l2.write();
        });
        std::thread::sleep(Duration::from_millis(10));
        assert!(!l.is_write_locked());
        drop(r1);
        std::thread::sleep(Duration::from_millis(10));
        assert!(!l.is_write_locked(), "one reader still holds the lock");
        drop(r2);
        writer.join().unwrap();
    }
}
