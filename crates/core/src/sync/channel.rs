//! Cooperative MPMC channels (bounded and unbounded).
//!
//! Channels are the communication backbone of the runtimes built on USF (ready-task queues,
//! request queues of the microservices workload). Blocked senders/receivers release their
//! virtual core, which matters when producers and consumers are oversubscribed.

use crate::park::Waiter;
use parking_lot::Mutex as RawMutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and every sender has been
/// dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is full.
    Full(T),
    /// Every receiver has been dropped.
    Disconnected(T),
}

/// Error returned by [`Receiver::try_recv`] and [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

struct ChanState<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
    send_waiters: VecDeque<Arc<Waiter>>,
    recv_waiters: VecDeque<Arc<Waiter>>,
}

struct Chan<T> {
    state: RawMutex<ChanState<T>>,
}

impl<T> Chan<T> {
    fn wake_one_recv(st: &mut ChanState<T>) -> Option<Arc<Waiter>> {
        st.recv_waiters.pop_front()
    }

    fn wake_one_send(st: &mut ChanState<T>) -> Option<Arc<Waiter>> {
        st.send_waiters.pop_front()
    }
}

/// Create a bounded channel with the given capacity (`capacity >= 1`).
///
/// # Panics
/// Panics if `capacity == 0` (use [`unbounded`] for an unbounded channel).
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded channel capacity must be at least 1");
    make_channel(Some(capacity))
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make_channel(None)
}

fn make_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: RawMutex::new(ChanState {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receivers: 1,
            send_waiters: VecDeque::new(),
            recv_waiters: VecDeque::new(),
        }),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// Sending half of a channel. Cloneable (MPMC).
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half of a channel. Cloneable (MPMC).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let to_wake = {
            let mut st = self.chan.state.lock();
            st.senders -= 1;
            if st.senders == 0 {
                std::mem::take(&mut st.recv_waiters)
            } else {
                VecDeque::new()
            }
        };
        for w in to_wake {
            w.wake();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let to_wake = {
            let mut st = self.chan.state.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                std::mem::take(&mut st.send_waiters)
            } else {
                VecDeque::new()
            }
        };
        for w in to_wake {
            w.wake();
        }
    }
}

impl<T> Sender<T> {
    /// Send a value, blocking cooperatively while the channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        loop {
            let waiter = {
                let mut st = self.chan.state.lock();
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.capacity.map(|c| st.queue.len() >= c).unwrap_or(false);
                if !full {
                    st.queue.push_back(value);
                    let w = Chan::wake_one_recv(&mut st);
                    drop(st);
                    if let Some(w) = w {
                        w.wake();
                    }
                    return Ok(());
                }
                let w = Waiter::new_for_current();
                st.send_waiters.push_back(Arc::clone(&w));
                w
            };
            waiter.wait();
            // Loop and re-check the condition; `value` is still ours.
        }
    }

    /// Try to send without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.chan.state.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        let full = st.capacity.map(|c| st.queue.len() >= c).unwrap_or(false);
        if full {
            return Err(TrySendError::Full(value));
        }
        st.queue.push_back(value);
        let w = Chan::wake_one_recv(&mut st);
        drop(st);
        if let Some(w) = w {
            w.wake();
        }
        Ok(())
    }

    /// Number of values currently queued (diagnostic; racy by nature).
    pub fn len(&self) -> usize {
        self.chan.state.lock().queue.len()
    }

    /// Whether the queue is currently empty (diagnostic; racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receive a value, blocking cooperatively while the channel is empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        loop {
            let waiter = {
                let mut st = self.chan.state.lock();
                if let Some(v) = st.queue.pop_front() {
                    let w = Chan::wake_one_send(&mut st);
                    drop(st);
                    if let Some(w) = w {
                        w.wake();
                    }
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                let w = Waiter::new_for_current();
                st.recv_waiters.push_back(Arc::clone(&w));
                w
            };
            waiter.wait();
        }
    }

    /// Try to receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.state.lock();
        if let Some(v) = st.queue.pop_front() {
            let w = Chan::wake_one_send(&mut st);
            drop(st);
            if let Some(w) = w {
                w.wake();
            }
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, TryRecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            let waiter = {
                let mut st = self.chan.state.lock();
                if let Some(v) = st.queue.pop_front() {
                    let w = Chan::wake_one_send(&mut st);
                    drop(st);
                    if let Some(w) = w {
                        w.wake();
                    }
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(TryRecvError::Disconnected);
                }
                if Instant::now() >= deadline {
                    return Err(TryRecvError::Empty);
                }
                let w = Waiter::new_for_current();
                st.recv_waiters.push_back(Arc::clone(&w));
                w
            };
            if !waiter.wait_deadline(deadline) {
                // Claim protocol: remove ourselves if still queued, otherwise absorb the
                // wake that claimed us and loop to pick up the value.
                let mut st = self.chan.state.lock();
                if let Some(pos) = st.recv_waiters.iter().position(|w| Arc::ptr_eq(w, &waiter)) {
                    st.recv_waiters.remove(pos);
                    if let Some(v) = st.queue.pop_front() {
                        return Ok(v);
                    }
                    return Err(TryRecvError::Empty);
                }
                drop(st);
                waiter.consume_wake();
            }
        }
    }

    /// Number of values currently queued (diagnostic; racy by nature).
    pub fn len(&self) -> usize {
        self.chan.state.lock().queue.len()
    }

    /// Whether the queue is currently empty (diagnostic; racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain every value currently in the channel without blocking.
    pub fn drain(&self) -> Vec<T> {
        let mut st = self.chan.state.lock();
        let out: Vec<T> = st.queue.drain(..).collect();
        let wakers: Vec<_> = st.send_waiters.drain(..).collect();
        drop(st);
        for w in wakers {
            w.wake();
        }
        out
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").field("len", &self.len()).finish()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Usf;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_blocks_sender_until_drained() {
        let (tx, rx) = channel(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        let h = std::thread::spawn(move || {
            tx.send(3).unwrap();
            tx.len()
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        h.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = unbounded::<i32>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(TryRecvError::Empty)
        );
        assert!(start.elapsed() >= Duration::from_millis(15));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(9));
    }

    #[test]
    fn mpmc_all_values_delivered_exactly_once() {
        let (tx, rx) = channel::<u32>(4);
        let mut producers = Vec::new();
        for p in 0..3u32 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u32> = (0..3u32)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn cooperative_pipeline_on_one_core() {
        // Producer and consumer share one virtual core; the channel's blocking operations
        // must hand the core back and forth.
        let usf = Usf::builder().cores(1).build();
        let p = usf.process("chan-test");
        let (tx, rx) = channel::<usize>(1);
        let consumer = p.spawn(move || {
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            sum
        });
        let producer = p.spawn(move || {
            for i in 0..20 {
                tx.send(i).unwrap();
            }
        });
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), (0..20).sum::<usize>());
        usf.shutdown();
    }

    #[test]
    fn drain_returns_pending_values() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.drain(), vec![0, 1, 2, 3, 4]);
        assert!(rx.is_empty());
    }
}
