//! Barriers: a cooperative blocking barrier and a busy-wait barrier with optional yielding.
//!
//! The busy-wait variant reproduces the pattern §5.2/§5.3 of the paper analyses: BLAS
//! libraries (OpenBLAS, BLIS) and MPICH use custom spin barriers that perform well when the
//! system is not oversubscribed but waste entire time slices when it is. The paper's fix is
//! to add a `sched_yield` every few iterations ("Baseline"); under USF that yield becomes a
//! cooperative scheduling point ("SCHED_COOP"), and leaving the barrier unmodified is the
//! "Original" configuration that collapses in Figure 3d.

use crate::park::Waiter;
use crate::timing::yield_now;
use parking_lot::Mutex as RawMutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Result of [`Barrier::wait`] / [`BusyBarrier::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierWaitResult {
    leader: bool,
}

impl BarrierWaitResult {
    /// Whether this thread was the last to arrive (the "leader" of the round).
    pub fn is_leader(&self) -> bool {
        self.leader
    }
}

#[derive(Default)]
struct BarrierState {
    arrived: usize,
    generation: u64,
    waiters: Vec<Arc<Waiter>>,
}

/// A reusable blocking barrier: waiting threads release their virtual core until the last
/// participant arrives.
pub struct Barrier {
    n: usize,
    state: RawMutex<BarrierState>,
}

impl Barrier {
    /// Create a barrier for `n` participants.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        Barrier {
            n,
            state: RawMutex::new(BarrierState::default()),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Wait until all `n` participants have called `wait`.
    pub fn wait(&self) -> BarrierWaitResult {
        let waiter = {
            let mut st = self.state.lock();
            st.arrived += 1;
            if st.arrived == self.n {
                st.arrived = 0;
                st.generation = st.generation.wrapping_add(1);
                let waiters = std::mem::take(&mut st.waiters);
                drop(st);
                for w in waiters {
                    w.wake();
                }
                return BarrierWaitResult { leader: true };
            }
            let w = Waiter::new_for_current();
            st.waiters.push(Arc::clone(&w));
            w
        };
        waiter.wait();
        BarrierWaitResult { leader: false }
    }

    /// Completed barrier rounds (diagnostic).
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }
}

impl std::fmt::Debug for Barrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Barrier")
            .field("participants", &self.n)
            .finish()
    }
}

/// A centralized busy-wait barrier (ticket based, reusable) with a configurable yield
/// policy, modelling the custom spin barriers of BLAS libraries.
///
/// * `yield_every = None` — pure spinning ("Original"): waiting threads burn their whole
///   time slice, which is catastrophic under oversubscription.
/// * `yield_every = Some(k)` — after `k` spin iterations the waiter yields; under the OS
///   scheduler this is the paper's one-line `sched_yield` fix ("Baseline"), under USF the
///   yield is a cooperative scheduling point and other tasks run immediately
///   ("SCHED_COOP").
pub struct BusyBarrier {
    n: u64,
    tickets: AtomicU64,
    released: AtomicU64,
    yield_every: Option<u32>,
    /// Total spin iterations executed by waiters (diagnostic for tests/benches).
    spin_iterations: AtomicU64,
    /// Total yields performed by waiters (diagnostic).
    yields: AtomicU64,
}

impl BusyBarrier {
    /// Create a busy-wait barrier for `n` participants with the given yield policy.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, yield_every: Option<u32>) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        BusyBarrier {
            n: n as u64,
            tickets: AtomicU64::new(0),
            released: AtomicU64::new(0),
            yield_every,
            spin_iterations: AtomicU64::new(0),
            yields: AtomicU64::new(0),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n as usize
    }

    /// The configured yield period.
    pub fn yield_every(&self) -> Option<u32> {
        self.yield_every
    }

    /// Spin (and optionally yield) until all `n` participants of this round have arrived.
    pub fn wait(&self) -> BarrierWaitResult {
        let ticket = self.tickets.fetch_add(1, Ordering::AcqRel);
        let round = ticket / self.n;
        if ticket % self.n == self.n - 1 {
            // Last arrival of the round: release it.
            self.released.fetch_max(round + 1, Ordering::AcqRel);
            return BarrierWaitResult { leader: true };
        }
        let mut spins: u32 = 0;
        while self.released.load(Ordering::Acquire) <= round {
            std::hint::spin_loop();
            spins = spins.wrapping_add(1);
            self.spin_iterations.fetch_add(1, Ordering::Relaxed);
            if let Some(k) = self.yield_every {
                if k > 0 && spins % k == 0 {
                    self.yields.fetch_add(1, Ordering::Relaxed);
                    yield_now();
                }
            }
        }
        BarrierWaitResult { leader: false }
    }

    /// Total spin iterations executed so far by all waiters.
    pub fn total_spins(&self) -> u64 {
        self.spin_iterations.load(Ordering::Relaxed)
    }

    /// Total yields performed so far by all waiters.
    pub fn total_yields(&self) -> u64 {
        self.yields.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for BusyBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BusyBarrier")
            .field("participants", &self.n)
            .field("yield_every", &self.yield_every)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Usf;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_participant_is_always_leader() {
        let b = Barrier::new(1);
        assert!(b.wait().is_leader());
        assert!(b.wait().is_leader());
        assert_eq!(b.generation(), 2);
        let bb = BusyBarrier::new(1, None);
        assert!(bb.wait().is_leader());
    }

    #[test]
    fn blocking_barrier_synchronizes_os_threads() {
        let n = 4;
        let b = Arc::new(Barrier::new(n));
        let before = Arc::new(AtomicUsize::new(0));
        let leaders = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&b);
            let before = Arc::clone(&before);
            let leaders = Arc::clone(&leaders);
            handles.push(std::thread::spawn(move || {
                before.fetch_add(1, Ordering::SeqCst);
                let r = b.wait();
                if r.is_leader() {
                    leaders.fetch_add(1, Ordering::SeqCst);
                }
                // After the barrier, every participant must have registered "before".
                assert_eq!(before.load(Ordering::SeqCst), n);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn blocking_barrier_is_reusable_across_rounds() {
        let n = 3;
        let rounds = 5;
        let b = Arc::new(Barrier::new(n));
        let mut handles = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..rounds {
                    b.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.generation(), rounds as u64);
    }

    #[test]
    fn cooperative_barrier_with_more_threads_than_cores() {
        // 2 virtual cores, 4 participants: the barrier can only complete if blocked waiters
        // release their cores so the remaining participants can run.
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("barrier-test");
        let b = Arc::new(Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                p.spawn(move || b.wait().is_leader())
            })
            .collect();
        let leaders: usize = handles
            .into_iter()
            .map(|h| usize::from(h.join().unwrap()))
            .sum();
        assert_eq!(leaders, 1);
        usf.shutdown();
    }

    #[test]
    fn busy_barrier_synchronizes_and_counts_spins() {
        let n = 3;
        let b = Arc::new(BusyBarrier::new(n, Some(64)));
        let mut handles = Vec::new();
        for i in 0..n {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                // Stagger arrivals so someone actually spins.
                std::thread::sleep(std::time::Duration::from_millis(5 * i as u64));
                b.wait();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            b.total_spins() > 0,
            "staggered arrivals must cause some spinning"
        );
    }

    #[test]
    fn busy_barrier_reusable_across_rounds() {
        let n = 2;
        let rounds = 50;
        let b = Arc::new(BusyBarrier::new(n, Some(16)));
        let mut handles = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut led = 0u32;
                for _ in 0..rounds {
                    if b.wait().is_leader() {
                        led += 1;
                    }
                }
                led
            }));
        }
        let total_leaders: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total_leaders, rounds, "exactly one leader per round");
    }

    #[test]
    fn busy_barrier_with_yield_completes_oversubscribed_under_usf() {
        // 1 virtual core and 2 participants: a pure spin barrier would deadlock (the paper's
        // §4.4 limitation) because the spinning waiter never releases the core. With
        // yielding enabled, the yield is a scheduling point and the barrier completes.
        let usf = Usf::builder().cores(1).build();
        let p = usf.process("busy-barrier-test");
        let b = Arc::new(BusyBarrier::new(2, Some(32)));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                let usf = usf.clone();
                p.spawn(move || {
                    // Make sure both workers exist before waiting, so the yield has a target.
                    while usf.nosv().scheduler().live_tasks() < 2 {
                        std::thread::yield_now();
                    }
                    b.wait();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            b.total_yields() > 0,
            "the waiter must have yielded its core"
        );
        usf.shutdown();
    }
}
