//! A wait group: wait until a counter of outstanding work items drops to zero.
//!
//! Used by the runtimes crate to implement `taskwait` (OmpSs-2) and end-of-parallel-region
//! joins (OpenMP) as cooperative scheduling points.

use crate::park::Waiter;
use parking_lot::Mutex as RawMutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Default)]
struct State {
    count: usize,
    waiters: Vec<Arc<Waiter>>,
}

/// A counter of outstanding work items with cooperative waiting.
#[derive(Default)]
pub struct WaitGroup {
    state: RawMutex<State>,
}

impl WaitGroup {
    /// Create a wait group with a zero counter.
    pub fn new() -> Self {
        WaitGroup::default()
    }

    /// Create a wait group with an initial counter.
    pub fn with_count(count: usize) -> Self {
        WaitGroup {
            state: RawMutex::new(State {
                count,
                waiters: Vec::new(),
            }),
        }
    }

    /// Add `n` outstanding items.
    pub fn add(&self, n: usize) {
        self.state.lock().count += n;
    }

    /// Mark one item as done; wakes waiters when the counter reaches zero.
    pub fn done(&self) {
        self.done_n(1);
    }

    /// Mark `n` items as done.
    pub fn done_n(&self, n: usize) {
        let to_wake = {
            let mut st = self.state.lock();
            assert!(st.count >= n, "WaitGroup::done called more times than add");
            st.count -= n;
            if st.count == 0 {
                std::mem::take(&mut st.waiters)
            } else {
                Vec::new()
            }
        };
        for w in to_wake {
            w.wake();
        }
    }

    /// Current counter value (diagnostic; racy by nature).
    pub fn count(&self) -> usize {
        self.state.lock().count
    }

    /// Block cooperatively until the counter reaches zero.
    pub fn wait(&self) {
        let waiter = {
            let mut st = self.state.lock();
            if st.count == 0 {
                return;
            }
            let w = Waiter::new_for_current();
            st.waiters.push(Arc::clone(&w));
            w
        };
        waiter.wait();
    }

    /// Block until the counter reaches zero or `timeout` elapses. Returns `true` if the
    /// counter reached zero.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let waiter = {
            let mut st = self.state.lock();
            if st.count == 0 {
                return true;
            }
            let w = Waiter::new_for_current();
            st.waiters.push(Arc::clone(&w));
            w
        };
        if waiter.wait_deadline(deadline) {
            return true;
        }
        let mut st = self.state.lock();
        if let Some(pos) = st.waiters.iter().position(|w| Arc::ptr_eq(w, &waiter)) {
            st.waiters.remove(pos);
            false
        } else {
            drop(st);
            waiter.consume_wake();
            true
        }
    }
}

impl std::fmt::Debug for WaitGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitGroup")
            .field("count", &self.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Usf;
    use std::sync::Arc;

    #[test]
    fn wait_on_zero_returns_immediately() {
        let wg = WaitGroup::new();
        wg.wait();
        assert!(wg.wait_timeout(Duration::from_millis(1)));
    }

    #[test]
    fn wait_blocks_until_all_done() {
        let wg = Arc::new(WaitGroup::with_count(3));
        let wg2 = Arc::clone(&wg);
        let waiter = std::thread::spawn(move || wg2.wait());
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(5));
            wg.done();
        }
        waiter.join().unwrap();
        assert_eq!(wg.count(), 0);
    }

    #[test]
    fn wait_timeout_expires_when_not_done() {
        let wg = WaitGroup::with_count(1);
        assert!(!wg.wait_timeout(Duration::from_millis(20)));
        wg.done();
        assert!(wg.wait_timeout(Duration::from_millis(20)));
    }

    #[test]
    #[should_panic]
    fn done_more_than_add_panics() {
        let wg = WaitGroup::new();
        wg.done();
    }

    #[test]
    fn cooperative_taskwait_pattern() {
        // One core, a "main" task waiting for 3 workers: the wait must release the core.
        let usf = Usf::builder().cores(1).build();
        let p = usf.process("wg-test");
        let wg = Arc::new(WaitGroup::with_count(3));
        let wg_main = Arc::clone(&wg);
        let p2 = p.clone();
        let main = p.spawn(move || {
            for _ in 0..3 {
                let wg = Arc::clone(&wg_main);
                p2.spawn(move || wg.done());
            }
            wg_main.wait();
            "all-done"
        });
        assert_eq!(main.join().unwrap(), "all-done");
        usf.shutdown();
    }
}
