//! Cooperative synchronization primitives — the blocking-API extensions of glibcv (§4.3.4).
//!
//! Every primitive follows the Listing 1 pattern of the paper:
//!
//! * contended operations put the calling thread's task in a **FIFO wait queue** guarded by
//!   a short internal lock, then block through [`crate::park::Waiter`] (`nosv_pause` when
//!   the thread is a USF worker, OS parking otherwise);
//! * release operations **hand off** to the first queued waiter (`nosv_submit`) instead of
//!   releasing and letting everyone race — e.g. a contended mutex transfers ownership
//!   directly to the head waiter, which is what removes lock-waiter preemption storms.
//!
//! Because the waiters degrade gracefully for non-attached threads, these are also perfectly
//! usable as ordinary synchronization primitives under the plain OS scheduler, which is how
//! the baseline configurations of the evaluation run the very same workload code.

mod barrier;
mod channel;
mod condvar;
mod mutex;
mod once;
mod rwlock;
mod semaphore;
mod wait_group;

pub use barrier::{Barrier, BarrierWaitResult, BusyBarrier};
pub use channel::{
    channel, unbounded, Receiver, RecvError, SendError, Sender, TryRecvError, TrySendError,
};
pub use condvar::Condvar;
pub use mutex::{Mutex, MutexGuard};
pub use once::Once;
pub use rwlock::{RwLock, RwLockReadGuard, RwLockWriteGuard};
pub use semaphore::Semaphore;
pub use wait_group::WaitGroup;
