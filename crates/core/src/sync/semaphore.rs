//! Cooperative counting semaphore (the `sem_wait`/`sem_post` extension).

use crate::park::Waiter;
use parking_lot::Mutex as RawMutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Default)]
struct State {
    permits: usize,
    queue: VecDeque<Arc<Waiter>>,
}

/// A counting semaphore whose blocked acquirers release their virtual core.
///
/// Releases hand permits directly to queued waiters (FIFO), so a permit made available under
/// contention wakes exactly the thread that has been waiting longest.
pub struct Semaphore {
    state: RawMutex<State>,
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            state: RawMutex::new(State {
                permits,
                queue: VecDeque::new(),
            }),
        }
    }

    /// Currently available permits (diagnostic; racy by nature).
    pub fn available_permits(&self) -> usize {
        self.state.lock().permits
    }

    /// Number of blocked acquirers (diagnostic; racy by nature).
    pub fn queue_len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Acquire one permit, blocking cooperatively if none is available.
    pub fn acquire(&self) {
        let waiter = {
            let mut st = self.state.lock();
            if st.permits > 0 {
                st.permits -= 1;
                return;
            }
            let w = Waiter::new_for_current();
            st.queue.push_back(Arc::clone(&w));
            w
        };
        // The permit is handed to us by a release.
        waiter.wait();
    }

    /// Try to acquire one permit without blocking.
    pub fn try_acquire(&self) -> bool {
        let mut st = self.state.lock();
        if st.permits > 0 {
            st.permits -= 1;
            true
        } else {
            false
        }
    }

    /// Acquire one permit, giving up after `timeout`. Returns whether a permit was acquired.
    pub fn acquire_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let waiter = {
            let mut st = self.state.lock();
            if st.permits > 0 {
                st.permits -= 1;
                return true;
            }
            let w = Waiter::new_for_current();
            st.queue.push_back(Arc::clone(&w));
            w
        };
        if waiter.wait_deadline(deadline) {
            return true;
        }
        let mut st = self.state.lock();
        if let Some(pos) = st.queue.iter().position(|w| Arc::ptr_eq(w, &waiter)) {
            st.queue.remove(pos);
            false
        } else {
            // A release claimed us: the permit is ours; absorb the wake-up.
            drop(st);
            waiter.consume_wake();
            true
        }
    }

    /// Release one permit (handing it to the longest-waiting acquirer, if any).
    pub fn release(&self) {
        self.release_n(1);
    }

    /// Release `n` permits.
    pub fn release_n(&self, n: usize) {
        let mut to_wake = Vec::new();
        {
            let mut st = self.state.lock();
            let mut remaining = n;
            while remaining > 0 {
                match st.queue.pop_front() {
                    Some(w) => {
                        to_wake.push(w);
                        remaining -= 1;
                    }
                    None => {
                        st.permits += remaining;
                        break;
                    }
                }
            }
        }
        for w in to_wake {
            w.wake();
        }
    }

    /// Run `f` while holding a permit.
    pub fn with_permit<R>(&self, f: impl FnOnce() -> R) -> R {
        self.acquire();
        let r = f();
        self.release();
        r
    }
}

impl std::fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Semaphore")
            .field("permits", &self.available_permits())
            .field("queued", &self.queue_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Usf;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn basic_acquire_release() {
        let s = Semaphore::new(2);
        s.acquire();
        s.acquire();
        assert_eq!(s.available_permits(), 0);
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
        s.release_n(2);
        assert_eq!(s.available_permits(), 2);
    }

    #[test]
    fn acquire_timeout_expires() {
        let s = Semaphore::new(0);
        let start = Instant::now();
        assert!(!s.acquire_timeout(Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(15));
        assert_eq!(s.queue_len(), 0);
        s.release();
        assert!(s.acquire_timeout(Duration::from_millis(20)));
    }

    #[test]
    fn permits_bound_concurrency() {
        let s = Arc::new(Semaphore::new(2));
        let inside = Arc::new(AtomicUsize::new(0));
        let max_inside = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let s = Arc::clone(&s);
            let inside = Arc::clone(&inside);
            let max_inside = Arc::clone(&max_inside);
            handles.push(std::thread::spawn(move || {
                s.with_permit(|| {
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    max_inside.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(10));
                    inside.fetch_sub(1, Ordering::SeqCst);
                });
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(max_inside.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn cooperative_semaphore_under_oversubscription() {
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("sem-test");
        let s = Arc::new(Semaphore::new(1));
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..5)
            .map(|_| {
                let s = Arc::clone(&s);
                let counter = Arc::clone(&counter);
                p.spawn(move || {
                    for _ in 0..20 {
                        s.with_permit(|| {
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        usf.shutdown();
    }

    #[test]
    fn release_n_wakes_multiple_waiters() {
        let s = Arc::new(Semaphore::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || s.acquire()));
        }
        while s.queue_len() < 3 {
            std::thread::yield_now();
        }
        s.release_n(3);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.available_permits(), 0);
    }
}
