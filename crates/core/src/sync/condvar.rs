//! Cooperative condition variable.

use crate::park::Waiter;
use crate::sync::mutex::MutexGuard;
use parking_lot::Mutex as RawMutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a timed condition wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (rather than a notification).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose blocked waiters release their virtual core.
///
/// Waiters are queued FIFO; `notify_one` submits the task at the head of the queue
/// (`nosv_submit`), `notify_all` submits all of them.
#[derive(Default)]
pub struct Condvar {
    waiters: RawMutex<VecDeque<Arc<Waiter>>>,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Release `guard`'s mutex, block until notified, then reacquire the mutex.
    ///
    /// Like POSIX condition variables, spurious wake-ups are possible; always re-check the
    /// predicate (or use [`Condvar::wait_while`]).
    pub fn wait<'a, T: ?Sized>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex = guard.mutex();
        let waiter = Waiter::new_for_current();
        self.waiters.lock().push_back(Arc::clone(&waiter));
        drop(guard);
        waiter.wait();
        mutex.lock()
    }

    /// [`Condvar::wait`] with a timeout.
    pub fn wait_timeout<'a, T: ?Sized>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let deadline = Instant::now() + timeout;
        let mutex = guard.mutex();
        let waiter = Waiter::new_for_current();
        self.waiters.lock().push_back(Arc::clone(&waiter));
        drop(guard);
        let signalled = if waiter.wait_deadline(deadline) {
            true
        } else {
            // Claim protocol: if still queued, remove ourselves (true timeout); otherwise a
            // notify claimed us and its wake-up must be absorbed.
            let mut q = self.waiters.lock();
            if let Some(pos) = q.iter().position(|w| Arc::ptr_eq(w, &waiter)) {
                q.remove(pos);
                false
            } else {
                drop(q);
                waiter.consume_wake();
                true
            }
        };
        (
            mutex.lock(),
            WaitTimeoutResult {
                timed_out: !signalled,
            },
        )
    }

    /// Wait until `condition` returns `false` (i.e. block *while* the condition holds).
    pub fn wait_while<'a, T: ?Sized>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) -> MutexGuard<'a, T> {
        while condition(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Timed [`Condvar::wait_while`]. Returns the guard and whether the wait timed out with
    /// the condition still true.
    pub fn wait_while_timeout<'a, T: ?Sized>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: impl FnMut(&mut T) -> bool,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let deadline = Instant::now() + timeout;
        while condition(&mut guard) {
            let now = Instant::now();
            if now >= deadline {
                return (guard, WaitTimeoutResult { timed_out: true });
            }
            let (g, _r) = self.wait_timeout(guard, deadline - now);
            guard = g;
        }
        (guard, WaitTimeoutResult { timed_out: false })
    }

    /// Wake one waiter. Returns `true` if a waiter was woken.
    pub fn notify_one(&self) -> bool {
        let w = self.waiters.lock().pop_front();
        match w {
            Some(w) => {
                w.wake();
                true
            }
            None => false,
        }
    }

    /// Wake every waiter. Returns how many were woken.
    pub fn notify_all(&self) -> usize {
        let ws: Vec<_> = self.waiters.lock().drain(..).collect();
        let n = ws.len();
        for w in ws {
            w.wake();
        }
        n
    }

    /// Number of queued waiters (diagnostic; racy by nature).
    pub fn waiter_count(&self) -> usize {
        self.waiters.lock().len()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar")
            .field("waiters", &self.waiter_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Usf;
    use crate::sync::Mutex;
    use std::sync::Arc;

    #[test]
    fn notify_one_wakes_a_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
            *g
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        assert!(h.join().unwrap());
    }

    #[test]
    fn notify_without_waiters_returns_false() {
        let cv = Condvar::new();
        assert!(!cv.notify_one());
        assert_eq!(cv.notify_all(), 0);
    }

    #[test]
    fn wait_timeout_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock();
        let start = Instant::now();
        let (_g, r) = cv.wait_timeout(g, Duration::from_millis(30));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert_eq!(
            cv.waiter_count(),
            0,
            "timed-out waiter must not linger in the queue"
        );
    }

    #[test]
    fn wait_while_rechecks_predicate() {
        let state = Arc::new((Mutex::new(0), Condvar::new()));
        let s2 = Arc::clone(&state);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let g = cv.wait_while(m.lock(), |v| *v < 3);
            *g
        });
        for i in 1..=3 {
            std::thread::sleep(Duration::from_millis(10));
            let (m, cv) = &*state;
            *m.lock() = i;
            cv.notify_all();
        }
        assert_eq!(h.join().unwrap(), 3);
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let mut handles = Vec::new();
        for _ in 0..5 {
            let s = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let (m, cv) = &*s;
                let _g = cv.wait_while(m.lock(), |go| !*go);
            }));
        }
        // Let everyone queue up.
        while state.1.waiter_count() < 5 {
            std::thread::yield_now();
        }
        *state.0.lock() = true;
        assert_eq!(state.1.notify_all(), 5);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn cooperative_producer_consumer_on_one_core() {
        // One virtual core: the consumer blocks on the condvar (releasing the core) so the
        // producer can run — this only works if the condvar wait is a real scheduling point.
        let usf = Usf::builder().cores(1).build();
        let proc = usf.process("cv-test");
        let state = Arc::new((Mutex::new(Vec::<u32>::new()), Condvar::new()));
        let s_cons = Arc::clone(&state);
        let consumer = proc.spawn(move || {
            let (m, cv) = &*s_cons;
            let mut got = Vec::new();
            let mut g = m.lock();
            while got.len() < 3 {
                while g.is_empty() {
                    g = cv.wait(g);
                }
                got.append(&mut g);
            }
            got
        });
        std::thread::sleep(Duration::from_millis(10));
        let s_prod = Arc::clone(&state);
        let producer = proc.spawn(move || {
            let (m, cv) = &*s_prod;
            for i in 0..3 {
                m.lock().push(i);
                cv.notify_one();
            }
        });
        producer.join().unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got.len(), 3);
        usf.shutdown();
    }

    #[test]
    fn wait_while_timeout_gives_up() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let (_g, r) = cv.wait_while_timeout(m.lock(), |v| !*v, Duration::from_millis(20));
        assert!(r.timed_out());
    }
}
