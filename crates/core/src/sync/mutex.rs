//! Cooperative mutex with FIFO ownership handoff (Listing 1 of the paper).

use crate::park::Waiter;
use parking_lot::Mutex as RawMutex;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Internal state: the paper augments `pthread_mutex_t` with a spinlock-protected FIFO wait
/// queue; `parking_lot`'s raw mutex plays the spinlock's role here (critical sections are a
/// few instructions long).
#[derive(Default)]
struct State {
    locked: bool,
    queue: VecDeque<Arc<Waiter>>,
}

/// A mutual-exclusion lock whose contended path is a scheduling point.
///
/// * Uncontended lock/unlock only touches the internal flag.
/// * A contended `lock` enqueues the calling task and blocks it (`nosv_pause`); the core is
///   handed to another ready task in the meantime.
/// * `unlock` with waiters **transfers ownership** to the first waiter and submits it
///   (`nosv_submit`); the lock is only really released when the queue is empty.
pub struct Mutex<T: ?Sized> {
    state: RawMutex<State>,
    data: UnsafeCell<T>,
}

// Safety: the mutex provides the required mutual exclusion for `T`; the usual bounds apply.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            state: RawMutex::new(State::default()),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking cooperatively if it is contended.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        {
            let mut st = self.state.lock();
            if !st.locked {
                st.locked = true;
                return MutexGuard { mutex: self };
            }
            let w = Waiter::new_for_current();
            st.queue.push_back(Arc::clone(&w));
            drop(st);
            w.wait();
        }
        // Ownership was handed to us by the unlocking thread: `locked` is still true.
        MutexGuard { mutex: self }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let mut st = self.state.lock();
        if st.locked {
            None
        } else {
            st.locked = true;
            Some(MutexGuard { mutex: self })
        }
    }

    /// Acquire the lock, giving up after `timeout`.
    pub fn lock_timeout(&self, timeout: Duration) -> Option<MutexGuard<'_, T>> {
        let deadline = Instant::now() + timeout;
        let waiter = {
            let mut st = self.state.lock();
            if !st.locked {
                st.locked = true;
                return Some(MutexGuard { mutex: self });
            }
            let w = Waiter::new_for_current();
            st.queue.push_back(Arc::clone(&w));
            w
        };
        if waiter.wait_deadline(deadline) {
            return Some(MutexGuard { mutex: self });
        }
        // Timed out: either we are still queued (remove ourselves, no lock) or an unlock
        // already claimed us (the lock is ours; absorb the wake-up).
        let mut st = self.state.lock();
        if let Some(pos) = st.queue.iter().position(|w| Arc::ptr_eq(w, &waiter)) {
            st.queue.remove(pos);
            None
        } else {
            drop(st);
            waiter.consume_wake();
            Some(MutexGuard { mutex: self })
        }
    }

    /// Whether the mutex is currently locked (diagnostic; racy by nature).
    pub fn is_locked(&self) -> bool {
        self.state.lock().locked
    }

    /// Number of tasks queued on the mutex (diagnostic; racy by nature).
    pub fn queue_len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Get a mutable reference to the protected value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Unlock: hand the lock to the first waiter if any, otherwise release it.
    fn unlock_internal(&self) {
        let next = {
            let mut st = self.state.lock();
            match st.queue.pop_front() {
                Some(w) => Some(w),
                None => {
                    st.locked = false;
                    None
                }
            }
        };
        if let Some(w) = next {
            // Ownership handoff: `locked` stays true; the woken waiter owns the mutex.
            w.wake();
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// The mutex this guard locks (used by [`crate::sync::Condvar`]).
    pub(crate) fn mutex(&self) -> &'a Mutex<T> {
        self.mutex
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the guard proves exclusive access.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the guard proves exclusive access.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.unlock_internal();
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Usf;
    use std::sync::Arc;

    #[test]
    fn uncontended_lock_unlock() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert!(!m.is_locked());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_timeout_expires_and_later_succeeds() {
        let m = Arc::new(Mutex::new(0));
        let g = m.lock();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock_timeout(Duration::from_millis(20)).is_some());
        assert!(!h.join().unwrap(), "timed lock must fail while held");
        drop(g);
        assert!(m.lock_timeout(Duration::from_millis(20)).is_some());
        assert_eq!(m.queue_len(), 0, "no stale waiters after a timeout");
    }

    #[test]
    fn os_threads_counter_is_consistent() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn usf_threads_counter_is_consistent_with_oversubscription() {
        // 2 virtual cores, 6 cooperative threads hammering one mutex: the contended path
        // must hand the core over correctly and never lose ownership.
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("mutex-test");
        let m = Arc::new(Mutex::new(0u64));
        // Hold the lock while the workers start so at least one of them observes it
        // contended and takes the cooperative block path, however the host machine
        // schedules the startup (on a single-CPU host, 500 tiny iterations can otherwise
        // finish within one OS timeslice and never contend).
        let gate = m.lock();
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let m = Arc::clone(&m);
                p.spawn(move || {
                    for _ in 0..500 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(gate);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 3000);
        // Contention must have exercised the cooperative block path at least once.
        assert!(usf.metrics().pauses + usf.metrics().pauses_elided > 0);
        usf.shutdown();
    }

    #[test]
    fn handoff_is_fifo() {
        // One holder, three queued lockers; they must acquire in the order they queued.
        let m = Arc::new(Mutex::new(Vec::<usize>::new()));
        let g = m.lock();
        let mut handles = Vec::new();
        for i in 0..3 {
            let mc = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                mc.lock().push(i);
            }));
            // Give each locker time to enqueue before the next, so the queue order is known.
            while m.queue_len() < i + 1 {
                std::thread::yield_now();
            }
        }
        drop(g);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn debug_formats() {
        let m = Mutex::new(3);
        assert!(format!("{m:?}").contains('3'));
        let g = m.lock();
        assert!(format!("{m:?}").contains("locked"));
        drop(g);
    }
}
