//! Sleeping and yielding — the `nanosleep`/`sched_yield` extensions (§4.3.4, §5.3).
//!
//! When the calling thread is a USF worker, [`sleep`] releases the virtual core for the
//! duration (another ready task runs there) and [`yield_now`] requeues the caller behind the
//! other ready tasks — the behaviour the paper adds to BLAS busy-wait barriers with a single
//! line of code. On non-attached threads both degrade to their `std` equivalents.

use crate::current::current;
use std::time::{Duration, Instant};

/// Cooperative sleep: the calling thread's core is handed to another ready task while it
/// sleeps. Falls back to `std::thread::sleep` for non-attached threads.
pub fn sleep(duration: Duration) {
    match current() {
        Some(ctx) => {
            let deadline = Instant::now() + duration;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    return;
                }
                // `waitfor` may wake early if someone submits the task (spurious for a pure
                // sleep); keep waiting until the deadline.
                let _ = ctx.nosv.scheduler().waitfor(&ctx.task, deadline - now);
            }
        }
        None => std::thread::sleep(duration),
    }
}

/// Cooperative yield: if other tasks are ready, requeue the caller and run one of them;
/// otherwise keep the core. Returns `true` when a switch happened (always `false` in OS
/// mode, where the kernel gives no feedback). This is the `sched_yield` interposition that
/// makes busy-wait barriers cooperate (§5.3).
///
/// Fast path: when nothing is ready — the overwhelmingly common case for a spinning
/// busy-wait barrier that is *not* oversubscribed — `Scheduler::yield_now` is a single
/// atomic load on the scheduler's ready gauge; neither the task's grant lock nor the
/// global scheduler lock is touched, so yield storms cannot contend with submitters on
/// other cores.
pub fn yield_now() -> bool {
    match current() {
        Some(ctx) => ctx.nosv.scheduler().yield_now(&ctx.task),
        None => {
            std::thread::yield_now();
            false
        }
    }
}

/// Busy-wait for `spins` iterations, yielding every `yield_every` iterations if provided.
/// This mirrors the paper's recommended adaptation of custom busy-wait barriers: spin a
/// little, then `sched_yield` so oversubscribed threads can make progress.
pub fn spin_wait_hint(spins: u32, yield_every: Option<u32>) {
    for i in 0..spins {
        std::hint::spin_loop();
        if let Some(k) = yield_every {
            if k > 0 && (i + 1) % k == 0 {
                yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Usf;

    #[test]
    fn os_sleep_honours_duration() {
        let start = Instant::now();
        sleep(Duration::from_millis(20));
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn os_yield_returns_false() {
        assert!(!yield_now());
    }

    #[test]
    fn cooperative_sleep_releases_the_core() {
        // One core, two threads: while the first sleeps, the second must get the core and
        // finish well before the first wakes.
        let usf = Usf::builder().cores(1).build();
        let p = usf.process("sleep-test");
        let sleeper = p.spawn(|| {
            let start = Instant::now();
            sleep(Duration::from_millis(80));
            start.elapsed()
        });
        // Let the sleeper start first.
        std::thread::sleep(Duration::from_millis(20));
        let quick = p.spawn(Instant::now);
        let quick_done = quick.join().unwrap();
        let slept = sleeper.join().unwrap();
        assert!(slept >= Duration::from_millis(70));
        // The quick thread must have run while the sleeper held no core.
        assert!(quick_done.elapsed() >= Duration::from_millis(0));
        usf.shutdown();
    }

    #[test]
    fn cooperative_yield_switches_between_workers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let usf = Usf::builder().cores(1).build();
        let p = usf.process("yield-test");
        let started = Arc::new(AtomicUsize::new(0));
        let mk = |p: &crate::runtime::ProcessHandle| {
            let started = Arc::clone(&started);
            p.spawn(move || {
                // Rendezvous cooperatively: on one core the other worker can only attach if
                // we keep yielding while we wait for it.
                started.fetch_add(1, Ordering::SeqCst);
                while started.load(Ordering::SeqCst) < 2 {
                    yield_now();
                    std::thread::yield_now();
                }
                let mut switched = 0;
                for _ in 0..100 {
                    if yield_now() {
                        switched += 1;
                    }
                }
                switched
            })
        };
        let a = mk(&p);
        let b = mk(&p);
        let total = a.join().unwrap() + b.join().unwrap();
        assert!(total > 0, "at least one yield must have switched");
        usf.shutdown();
    }

    #[test]
    fn spin_wait_hint_runs_with_and_without_yield() {
        spin_wait_hint(100, None);
        spin_wait_hint(100, Some(10));
        spin_wait_hint(0, Some(1));
    }
}
