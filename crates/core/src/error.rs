//! Error types for the USF layer.

use std::fmt;

/// Errors reported by the USF framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UsfError {
    /// The instance has been shut down.
    ShutDown,
    /// A spawned thread panicked; the payload's `Display` is captured when possible.
    ThreadPanicked(String),
    /// A configuration value was invalid (e.g. an unparsable environment variable).
    InvalidConfig(String),
    /// A channel operation failed because the peer endpoints were dropped.
    ChannelClosed,
    /// A timed operation expired.
    Timeout,
}

impl fmt::Display for UsfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UsfError::ShutDown => write!(f, "USF instance has been shut down"),
            UsfError::ThreadPanicked(msg) => write!(f, "spawned thread panicked: {msg}"),
            UsfError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            UsfError::ChannelClosed => write!(f, "channel closed"),
            UsfError::Timeout => write!(f, "operation timed out"),
        }
    }
}

impl std::error::Error for UsfError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, UsfError>;
