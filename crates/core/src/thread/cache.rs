//! The thread cache (§4.3.1).
//!
//! glibcv avoids the cost of repeatedly creating and destroying pthreads (the pattern of the
//! BLIS pthread backend, Table 2) with the intra-process caching-and-reuse strategy of Dice
//! and Kogan: when a thread's user function ends it is *not* destroyed; it parks in a cache
//! and the next `pthread_create` reuses the most recently cached thread (LIFO). At shutdown
//! the cached threads are terminated and joined for real.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A unit of work handed to a cached worker thread.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Commands delivered to an idle cached thread.
enum Slot {
    /// Nothing to do.
    Idle,
    /// Run this job, then return to the cache.
    Run(Job),
    /// Exit the worker loop.
    Terminate,
}

/// The per-thread mailbox an idle cached worker sleeps on.
struct Mailbox {
    slot: Mutex<Slot>,
    cv: Condvar,
}

impl Mailbox {
    fn new() -> Arc<Self> {
        Arc::new(Mailbox {
            slot: Mutex::new(Slot::Idle),
            cv: Condvar::new(),
        })
    }

    fn deliver(&self, s: Slot) {
        let mut slot = self.slot.lock();
        *slot = s;
        self.cv.notify_one();
    }

    fn receive(&self) -> Slot {
        let mut slot = self.slot.lock();
        loop {
            match std::mem::replace(&mut *slot, Slot::Idle) {
                Slot::Idle => self.cv.wait(&mut slot),
                other => return other,
            }
        }
    }
}

/// Outcome of a bounded [`ThreadCache::shutdown_timeout`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadShutdownReport {
    /// Worker threads joined within the deadline.
    pub joined: usize,
    /// Names of the worker threads still running when the deadline expired (`<unnamed>`
    /// for anonymous workers). They were left running detached, not joined.
    pub stragglers: Vec<String>,
}

impl ThreadShutdownReport {
    /// Whether every worker was joined before the deadline.
    pub fn clean(&self) -> bool {
        self.stragglers.is_empty()
    }
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadCacheStats {
    /// OS threads actually created.
    pub created: u64,
    /// Spawns served by reusing a cached thread.
    pub reused: u64,
    /// Threads currently parked in the cache.
    pub idle: u64,
}

/// LIFO cache of finished worker threads. See the module documentation.
pub struct ThreadCache {
    idle: Mutex<Vec<Arc<Mailbox>>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    capacity: usize,
    created: AtomicU64,
    reused: AtomicU64,
    shutdown: AtomicBool,
}

impl std::fmt::Debug for ThreadCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ThreadCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

impl ThreadCache {
    /// Create a cache retaining at most `capacity` idle threads (`0` disables reuse: every
    /// spawn creates a fresh OS thread that exits when its job ends).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(ThreadCache {
            idle: Mutex::new(Vec::new()),
            handles: Mutex::new(Vec::new()),
            capacity,
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Cache effectiveness counters.
    pub fn stats(&self) -> ThreadCacheStats {
        ThreadCacheStats {
            created: self.created.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            idle: self.idle.lock().len() as u64,
        }
    }

    /// Run `job` on a cached thread if one is parked, otherwise on a freshly created OS
    /// thread (which will park itself in the cache when the job ends).
    pub(crate) fn dispatch(self: &Arc<Self>, name: Option<String>, job: Job) {
        if let Some(mailbox) = self.idle.lock().pop() {
            self.reused.fetch_add(1, Ordering::Relaxed);
            mailbox.deliver(Slot::Run(job));
            return;
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        let cache = Arc::clone(self);
        let mailbox = Mailbox::new();
        let mb = Arc::clone(&mailbox);
        let mut builder = std::thread::Builder::new();
        if let Some(n) = name {
            builder = builder.name(n);
        }
        let handle = builder
            .spawn(move || {
                job();
                cache.worker_loop(mb);
            })
            .expect("failed to spawn worker thread");
        self.handles.lock().push(handle);
    }

    /// Worker side: park in the cache and serve further jobs until terminated or evicted.
    fn worker_loop(self: &Arc<Self>, mailbox: Arc<Mailbox>) {
        loop {
            {
                // The shutdown check must happen under the same lock as the idle push:
                // checked before taking the lock, a concurrent `request_shutdown` could
                // drain `idle` between the check and the push, and this thread would
                // park in a list nobody will ever deliver `Terminate` to (hanging the
                // final join). `request_shutdown` sets the flag before draining, so
                // whichever side takes the lock second sees the other's write.
                let mut idle = self.idle.lock();
                if self.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if idle.len() >= self.capacity {
                    // Cache full (or caching disabled): this thread really exits.
                    return;
                }
                idle.push(Arc::clone(&mailbox));
            }
            match mailbox.receive() {
                Slot::Run(job) => job(),
                Slot::Terminate => return,
                Slot::Idle => unreachable!("receive never returns Idle"),
            }
        }
    }

    /// Ask cached threads to terminate without joining them (safe to call from any thread,
    /// including a cached worker itself).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let idle = std::mem::take(&mut *self.idle.lock());
        for mailbox in idle {
            mailbox.deliver(Slot::Terminate);
        }
    }

    /// Terminate and join every thread ever created by the cache. Must not be called from a
    /// cached worker thread.
    ///
    /// Joins are bounded: a worker wedged in user code (deadlocked, stalled on external
    /// I/O) is abandoned after a generous deadline instead of hanging the teardown
    /// forever. Use [`ThreadCache::shutdown_timeout`] to pick the deadline and learn who
    /// straggled.
    pub fn shutdown(&self) {
        let _ = self.shutdown_timeout(DEFAULT_SHUTDOWN_TIMEOUT);
    }

    /// Like [`ThreadCache::shutdown`], but with an explicit deadline: joins every worker
    /// that finishes within `timeout` and reports the ones that did not. Stragglers are
    /// left running detached (they exit on their own once their job returns — the
    /// shutdown flag keeps them out of the cache), so calling this again later can no
    /// longer join them.
    pub fn shutdown_timeout(&self, timeout: std::time::Duration) -> ThreadShutdownReport {
        self.request_shutdown();
        let mut handles = std::mem::take(&mut *self.handles.lock());
        let deadline = std::time::Instant::now() + timeout;
        let mut report = ThreadShutdownReport::default();
        loop {
            let mut still_running = Vec::new();
            for h in handles {
                if h.is_finished() {
                    let _ = h.join();
                    report.joined += 1;
                } else {
                    still_running.push(h);
                }
            }
            handles = still_running;
            if handles.is_empty() || std::time::Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        for h in &handles {
            report
                .stragglers
                .push(h.thread().name().unwrap_or("<unnamed>").to_string());
        }
        report
    }
}

/// Deadline used by the convenience [`ThreadCache::shutdown`]: long enough that any
/// healthy worker joins, short enough that a wedged one cannot hang teardown forever.
pub const DEFAULT_SHUTDOWN_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_threads_are_reused() {
        let cache = ThreadCache::new(8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let c = Arc::clone(&counter);
            cache.dispatch(
                None,
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            );
            // Serialize so the previous thread has time to park before the next dispatch.
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        let stats = cache.stats();
        assert_eq!(stats.created + stats.reused, 4);
        assert!(
            stats.reused >= 1,
            "sequential spawns should reuse cached threads: {stats:?}"
        );
        cache.shutdown();
    }

    #[test]
    fn zero_capacity_disables_reuse() {
        let cache = ThreadCache::new(0);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let c = Arc::clone(&counter);
            cache.dispatch(
                None,
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        cache.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        let stats = cache.stats();
        assert_eq!(stats.created, 3);
        assert_eq!(stats.reused, 0);
    }

    #[test]
    fn named_threads_get_their_name() {
        let cache = ThreadCache::new(1);
        let (tx, rx) = std::sync::mpsc::channel();
        cache.dispatch(
            Some("usf-worker-x".to_string()),
            Box::new(move || {
                tx.send(std::thread::current().name().map(str::to_owned))
                    .unwrap();
            }),
        );
        assert_eq!(rx.recv().unwrap().as_deref(), Some("usf-worker-x"));
        cache.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_everything() {
        let cache = ThreadCache::new(4);
        for _ in 0..3 {
            cache.dispatch(None, Box::new(|| {}));
        }
        cache.shutdown();
        cache.shutdown();
        assert_eq!(cache.stats().idle, 0);
    }

    #[test]
    fn shutdown_timeout_reports_wedged_workers_instead_of_hanging() {
        let cache = ThreadCache::new(4);
        let release = Arc::new(AtomicBool::new(false));
        let rel = Arc::clone(&release);
        cache.dispatch(
            Some("wedged-worker".to_string()),
            Box::new(move || {
                while !rel.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }),
        );
        cache.dispatch(None, Box::new(|| {}));
        let report = cache.shutdown_timeout(Duration::from_millis(100));
        assert_eq!(report.joined, 1, "the healthy worker joins");
        assert_eq!(report.stragglers, vec!["wedged-worker".to_string()]);
        assert!(!report.clean());
        release.store(true, Ordering::SeqCst); // let the abandoned thread exit
    }

    #[test]
    fn concurrent_dispatches_all_run() {
        let cache = ThreadCache::new(16);
        let counter = Arc::new(AtomicUsize::new(0));
        let mut outer = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let counter = Arc::clone(&counter);
            outer.push(std::thread::spawn(move || {
                for _ in 0..16 {
                    let c = Arc::clone(&counter);
                    cache.dispatch(
                        None,
                        Box::new(move || {
                            c.fetch_add(1, Ordering::SeqCst);
                        }),
                    );
                }
            }));
        }
        for h in outer {
            h.join().unwrap();
        }
        // Wait for all 64 jobs to finish.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while counter.load(Ordering::SeqCst) < 64 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        cache.shutdown();
    }
}
