//! Cooperative thread creation — the `pthread_create` extension of glibcv (§4.3.1).
//!
//! [`ProcessHandle::spawn`](crate::runtime::ProcessHandle::spawn) wraps the user function:
//! the spawned OS thread first attaches itself to the nOS-V scheduler (becoming a worker
//! with an associated task) and only then runs the user code, pinned to the virtual core the
//! scheduler granted it. When the user function returns, the worker detaches and parks in
//! the [`cache::ThreadCache`] instead of exiting; `join` is *masked* — it waits on an event
//! set by the wrapper rather than on OS thread termination, exactly like glibcv masks
//! `pthread_join` when a thread is placed in the cache.

pub mod cache;

pub use cache::{ThreadCache, ThreadCacheStats, ThreadShutdownReport, DEFAULT_SHUTDOWN_TIMEOUT};

use crate::current::{clear_current, set_current, CurrentCtx};
use crate::error::UsfError;
use crate::park::Event;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;
use usf_nosv::{NosvInstance, ProcessId, TaskRef};

/// Shared completion slot between a spawned thread and its [`JoinHandle`].
struct Packet<T> {
    result: Mutex<Option<std::thread::Result<T>>>,
    done: Event,
    task: Mutex<Option<TaskRef>>,
}

/// Handle to a cooperative thread, returned by
/// [`ProcessHandle::spawn`](crate::runtime::ProcessHandle::spawn).
///
/// Unlike `std::thread::JoinHandle`, joining does not wait for the OS thread to exit (the
/// thread is recycled into the cache); it waits for the user function to finish.
pub struct JoinHandle<T> {
    packet: Arc<Packet<T>>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl<T> JoinHandle<T> {
    /// Whether the thread's user function has finished.
    pub fn is_finished(&self) -> bool {
        self.packet.done.is_set()
    }

    /// The nOS-V task associated with the thread, once it has attached.
    pub fn task(&self) -> Option<TaskRef> {
        self.packet.task.lock().clone()
    }

    /// Wait (cooperatively, if the caller is itself a USF thread) for the thread to finish
    /// and return its result. Mirrors `std::thread::JoinHandle::join`: a panic in the
    /// spawned thread is reported as `Err`.
    pub fn join(self) -> std::thread::Result<T> {
        self.packet.done.wait();
        self.packet
            .result
            .lock()
            .take()
            .expect("join called twice or result stolen")
    }

    /// Like [`JoinHandle::join`], but gives up after `timeout`. On timeout the handle is
    /// returned so the caller can keep waiting later.
    pub fn join_timeout(self, timeout: Duration) -> Result<std::thread::Result<T>, JoinHandle<T>> {
        if self.packet.done.wait_timeout(timeout) {
            Ok(self
                .packet
                .result
                .lock()
                .take()
                .expect("join called twice or result stolen"))
        } else {
            Err(self)
        }
    }

    /// Convenience wrapper around [`JoinHandle::join`] mapping panics to [`UsfError`].
    pub fn join_result(self) -> Result<T, UsfError> {
        self.join().map_err(|e| {
            let msg = e
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| e.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            UsfError::ThreadPanicked(msg)
        })
    }
}

/// Spawn a cooperative thread in process `pid` of the given instance, using `cache` for
/// worker reuse. Used by [`crate::runtime::ProcessHandle::spawn`].
pub(crate) fn spawn_on<F, T>(
    nosv: &NosvInstance,
    cache: &Arc<ThreadCache>,
    pid: ProcessId,
    name: Option<String>,
    f: F,
) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let packet = Arc::new(Packet::<T> {
        result: Mutex::new(None),
        done: Event::new(),
        task: Mutex::new(None),
    });
    let packet2 = Arc::clone(&packet);
    let nosv = nosv.clone();
    let label = name.clone();
    let job = Box::new(move || {
        // Attach: the thread is recruited as a nOS-V worker and blocks here until the
        // scheduler grants it a core (it can no longer run freely). The attach can lose a
        // race against shutdown or a process kill; the failure must land in the join
        // packet as an error — a panic here would skip `done.set()` and hang the joiner.
        let result =
            match nosv.try_attach(pid, label.as_deref()) {
                Ok(handle) => {
                    *packet2.task.lock() = Some(handle.task().clone());
                    set_current(CurrentCtx {
                        task: handle.task().clone(),
                        nosv: nosv.clone(),
                        process: pid,
                    });
                    let result = catch_unwind(AssertUnwindSafe(f));
                    clear_current();
                    handle.detach();
                    result
                }
                Err(e) => Err(Box::new(format!("usf spawn: attach failed: {e}"))
                    as Box<dyn std::any::Any + Send>),
            };
        *packet2.result.lock() = Some(result);
        packet2.done.set();
    });
    cache.dispatch(name, job);
    JoinHandle { packet }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usf_nosv::NosvConfig;

    fn setup(cores: usize) -> (NosvInstance, Arc<ThreadCache>, ProcessId) {
        let nosv = NosvInstance::new(NosvConfig::with_cores(cores));
        let pid = nosv.register_process("test");
        (nosv, ThreadCache::new(32), pid)
    }

    #[test]
    fn spawn_and_join_returns_value() {
        let (nosv, cache, pid) = setup(2);
        let h = spawn_on(&nosv, &cache, pid, Some("t1".into()), || 21 * 2);
        assert_eq!(h.join().unwrap(), 42);
        cache.shutdown();
    }

    #[test]
    fn join_reports_panics() {
        let (nosv, cache, pid) = setup(2);
        let h = spawn_on(&nosv, &cache, pid, None, || panic!("boom"));
        let err = h.join_result().unwrap_err();
        assert!(matches!(err, UsfError::ThreadPanicked(msg) if msg.contains("boom")));
        cache.shutdown();
    }

    #[test]
    fn join_timeout_returns_handle_when_still_running() {
        let (nosv, cache, pid) = setup(2);
        let h = spawn_on(&nosv, &cache, pid, None, || {
            std::thread::sleep(Duration::from_millis(100));
            5
        });
        let h = match h.join_timeout(Duration::from_millis(5)) {
            Err(h) => h,
            Ok(_) => panic!("join should have timed out"),
        };
        assert_eq!(h.join().unwrap(), 5);
        cache.shutdown();
    }

    #[test]
    fn oversubscribed_spawns_all_complete() {
        // 1 virtual core, 8 threads: they must run one at a time and all complete.
        let (nosv, cache, pid) = setup(1);
        let handles: Vec<_> = (0..8)
            .map(|i| spawn_on(&nosv, &cache, pid, None, move || i))
            .collect();
        let sum: i32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(sum, (0..8).sum());
        // The scheduler saw 8 attaches/detaches and never ran two at once.
        let m = nosv.metrics();
        assert_eq!(m.attaches, 8);
        assert_eq!(m.detaches, 8);
        cache.shutdown();
    }

    #[test]
    fn spawned_thread_is_attached_and_reports_task() {
        let (nosv, cache, pid) = setup(2);
        let h = spawn_on(&nosv, &cache, pid, None, crate::current::is_attached);
        let attached = h.join().unwrap();
        assert!(attached, "spawned closure must observe an attached context");
        cache.shutdown();
    }

    #[test]
    fn is_finished_becomes_true() {
        let (nosv, cache, pid) = setup(2);
        let h = spawn_on(&nosv, &cache, pid, None, || ());
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !h.is_finished() && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(h.is_finished());
        h.join().unwrap();
        cache.shutdown();
    }
}
