//! USF configuration, including the environment-variable startup path.
//!
//! In the paper, a process enters USF when the `USF_ENABLE` environment variable is set at
//! startup (§4.3.3); `chrt -c <app>` simply launches the app with the variable set. The same
//! convention is supported here through [`UsfConfig::from_env`]: `USF_ENABLE=1` turns the
//! framework on and the remaining `USF_*` variables tune it.

use crate::error::UsfError;
use std::time::Duration;
use usf_nosv::{NosvConfig, PolicyKind, Topology};

/// Configuration for a [`crate::Usf`] instance.
#[derive(Debug, Clone)]
pub struct UsfConfig {
    /// Number of virtual cores (default: detected host parallelism).
    pub cores: usize,
    /// Number of NUMA nodes the cores are split into (default 1).
    pub numa_nodes: usize,
    /// Scheduling policy (default: SCHED_COOP).
    pub policy: PolicyKind,
    /// Per-process quantum evaluated at scheduling points (default 20 ms).
    pub quantum: Duration,
    /// Slice used by timed polling loops (default 5 ms, §4.3.4).
    pub wait_slice: Duration,
    /// Maximum number of finished worker threads kept for reuse by the thread cache
    /// (default 256; 0 disables caching).
    pub thread_cache_capacity: usize,
    /// Optional name of a shared instance to connect to (the multi-process shared segment).
    pub instance_name: Option<String>,
}

impl UsfConfig {
    /// Default configuration: detected cores, one NUMA node, SCHED_COOP, 20 ms quantum.
    pub fn detect() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        UsfConfig {
            cores,
            numa_nodes: 1,
            policy: PolicyKind::Coop,
            quantum: Duration::from_millis(20),
            wait_slice: Duration::from_millis(5),
            thread_cache_capacity: 256,
            instance_name: None,
        }
    }

    /// Configuration with an explicit core count (single NUMA node).
    pub fn with_cores(cores: usize) -> Self {
        UsfConfig {
            cores,
            ..UsfConfig::detect()
        }
    }

    /// Read the configuration from `USF_*` environment variables.
    ///
    /// Returns `Ok(None)` when `USF_ENABLE` is unset or `0` (USF disabled — the application
    /// should run on the plain OS scheduler), `Ok(Some(config))` when enabled, and an error
    /// when a variable is present but unparsable.
    ///
    /// Recognised variables:
    ///
    /// | Variable | Meaning | Default |
    /// |---|---|---|
    /// | `USF_ENABLE` | `1`/`true` enables the framework | disabled |
    /// | `USF_CORES` | number of virtual cores | host parallelism |
    /// | `USF_NUMA_NODES` | NUMA nodes | 1 |
    /// | `USF_POLICY` | `coop` or `fifo` | `coop` |
    /// | `USF_QUANTUM_MS` | per-process quantum in ms | 20 |
    /// | `USF_WAIT_SLICE_MS` | timed-poll slice in ms | 5 |
    /// | `USF_CACHE` | thread-cache capacity | 256 |
    /// | `USF_INSTANCE` | shared instance name | none |
    pub fn from_env() -> Result<Option<Self>, UsfError> {
        let enabled = match std::env::var("USF_ENABLE") {
            Ok(v) => matches!(v.trim(), "1" | "true" | "TRUE" | "yes" | "on"),
            Err(_) => false,
        };
        if !enabled {
            return Ok(None);
        }
        let mut cfg = UsfConfig::detect();
        if let Ok(v) = std::env::var("USF_CORES") {
            cfg.cores = parse(&v, "USF_CORES")?;
        }
        if let Ok(v) = std::env::var("USF_NUMA_NODES") {
            cfg.numa_nodes = parse(&v, "USF_NUMA_NODES")?;
        }
        if let Ok(v) = std::env::var("USF_POLICY") {
            cfg.policy = match v.trim().to_ascii_lowercase().as_str() {
                "coop" | "sched_coop" => PolicyKind::Coop,
                "fifo" => PolicyKind::Fifo,
                other => {
                    return Err(UsfError::InvalidConfig(format!(
                        "USF_POLICY={other} (expected coop|fifo)"
                    )))
                }
            };
        }
        if let Ok(v) = std::env::var("USF_QUANTUM_MS") {
            cfg.quantum = Duration::from_millis(parse(&v, "USF_QUANTUM_MS")?);
        }
        if let Ok(v) = std::env::var("USF_WAIT_SLICE_MS") {
            cfg.wait_slice = Duration::from_millis(parse(&v, "USF_WAIT_SLICE_MS")?);
        }
        if let Ok(v) = std::env::var("USF_CACHE") {
            cfg.thread_cache_capacity = parse(&v, "USF_CACHE")?;
        }
        if let Ok(v) = std::env::var("USF_INSTANCE") {
            if !v.trim().is_empty() {
                cfg.instance_name = Some(v.trim().to_string());
            }
        }
        Ok(Some(cfg))
    }

    /// Convert to the substrate configuration.
    pub fn to_nosv(&self) -> NosvConfig {
        NosvConfig::with_topology(Topology::new(self.cores, self.numa_nodes.max(1)))
            .quantum(self.quantum)
            .policy(self.policy.clone())
            .wait_slice(self.wait_slice)
    }
}

impl Default for UsfConfig {
    fn default() -> Self {
        UsfConfig::detect()
    }
}

fn parse<T: std::str::FromStr>(v: &str, name: &str) -> Result<T, UsfError> {
    v.trim()
        .parse::<T>()
        .map_err(|_| UsfError::InvalidConfig(format!("{name}={v}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper() {
        let c = UsfConfig::with_cores(4);
        assert_eq!(c.cores, 4);
        assert_eq!(c.quantum, Duration::from_millis(20));
        assert_eq!(c.wait_slice, Duration::from_millis(5));
        assert!(matches!(c.policy, PolicyKind::Coop));
        let n = c.to_nosv();
        assert_eq!(n.topology.num_cores(), 4);
        assert_eq!(n.process_quantum, Duration::from_millis(20));
    }

    #[test]
    fn to_nosv_respects_numa_split() {
        let mut c = UsfConfig::with_cores(8);
        c.numa_nodes = 2;
        let n = c.to_nosv();
        assert_eq!(n.topology.num_numa_nodes(), 2);
    }

    // Environment-variable behaviour is tested in a dedicated integration test binary
    // (tests/env_config.rs at the workspace root) because mutating the process environment
    // is racy inside a multi-threaded unit-test runner.
}
