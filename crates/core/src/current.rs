//! Per-thread "current task" context.
//!
//! glibcv stores the associated nOS-V task inside the extended `pthread_t` object; here the
//! equivalent association lives in a thread-local. Every blocking primitive consults it to
//! decide between the cooperative path (pause/submit through the scheduler) and the plain
//! OS path (park/unpark) — which is exactly the "glibcv enabled / glibcv disabled" switch of
//! Figure 1.

use std::cell::RefCell;
use usf_nosv::{NosvInstance, ProcessId, TaskRef};

/// The context of a thread attached to USF.
#[derive(Clone, Debug)]
pub struct CurrentCtx {
    /// The task permanently bound to this thread.
    pub task: TaskRef,
    /// The instance (scheduler) the task belongs to.
    pub nosv: NosvInstance,
    /// The process domain of the task.
    pub process: ProcessId,
}

thread_local! {
    static CURRENT: RefCell<Option<CurrentCtx>> = const { RefCell::new(None) };
}

/// Install the current thread's USF context (done by the spawn wrapper / attach guard).
pub(crate) fn set_current(ctx: CurrentCtx) {
    CURRENT.with(|c| *c.borrow_mut() = Some(ctx));
}

/// Remove the current thread's USF context. Returns the previous context, if any.
pub(crate) fn clear_current() -> Option<CurrentCtx> {
    CURRENT.with(|c| c.borrow_mut().take())
}

/// Run `f` with a reference to the current context (or `None` if the thread is not attached).
pub fn with_current<R>(f: impl FnOnce(Option<&CurrentCtx>) -> R) -> R {
    CURRENT.with(|c| f(c.borrow().as_ref()))
}

/// A clone of the current context, if the thread is attached.
pub fn current() -> Option<CurrentCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the calling thread is attached to a USF instance.
pub fn is_attached() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use usf_nosv::NosvConfig;

    #[test]
    fn unattached_thread_has_no_context() {
        assert!(!is_attached());
        assert!(current().is_none());
        with_current(|c| assert!(c.is_none()));
    }

    #[test]
    fn set_and_clear_context() {
        let nosv = NosvInstance::new(NosvConfig::with_cores(1));
        let pid = nosv.register_process("p");
        let handle = nosv.attach(pid, Some("ctx-test"));
        set_current(CurrentCtx {
            task: handle.task().clone(),
            nosv: nosv.clone(),
            process: pid,
        });
        assert!(is_attached());
        assert_eq!(current().unwrap().process, pid);
        let prev = clear_current();
        assert!(prev.is_some());
        assert!(!is_attached());
        handle.detach();
    }
}
