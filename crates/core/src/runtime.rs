//! The USF instance and process-domain handles.
//!
//! [`Usf`] plays the role of the glibcv runtime initialised at process startup (§4.3.3):
//! it owns the connection to the nOS-V scheduler and the thread cache. A [`ProcessHandle`]
//! represents one *process domain* registered with the shared scheduler; spawning from
//! different process handles reproduces the paper's multi-process scenarios (the scheduler
//! rotates its per-process quantum among them), while spawning from one handle with several
//! runtimes on top reproduces the multi-runtime (nested) scenarios.

use crate::config::UsfConfig;
use crate::current::{clear_current, set_current, CurrentCtx};
use crate::thread::{spawn_on, JoinHandle, ThreadCache, ThreadCacheStats};
use std::sync::Arc;
use usf_nosv::{MetricsSnapshot, NosvInstance, ProcessId, TaskHandle, Topology};

/// Shared interior of a [`Usf`] instance.
pub(crate) struct UsfInner {
    pub(crate) nosv: NosvInstance,
    pub(crate) cache: Arc<ThreadCache>,
    pub(crate) config: UsfConfig,
}

impl Drop for UsfInner {
    fn drop(&mut self) {
        // Safety valve: release scheduler control and ask cached threads to exit. We do not
        // join here (the last reference may be dropped from a cached worker itself); the
        // explicit `Usf::shutdown` performs the joining variant.
        self.nosv.shutdown();
        self.cache.request_shutdown();
    }
}

/// Builder for [`Usf`] instances.
#[derive(Debug, Clone, Default)]
pub struct UsfBuilder {
    config: UsfConfig,
    connect_name: Option<String>,
}

impl UsfBuilder {
    /// Start from the default configuration (detected cores, SCHED_COOP).
    pub fn new() -> Self {
        UsfBuilder {
            config: UsfConfig::detect(),
            connect_name: None,
        }
    }

    /// Number of virtual cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.config.cores = cores;
        self
    }

    /// Number of NUMA nodes the cores are split into.
    pub fn numa_nodes(mut self, nodes: usize) -> Self {
        self.config.numa_nodes = nodes;
        self
    }

    /// Scheduling policy.
    pub fn policy(mut self, policy: usf_nosv::PolicyKind) -> Self {
        self.config.policy = policy;
        self
    }

    /// Per-process quantum.
    pub fn quantum(mut self, quantum: std::time::Duration) -> Self {
        self.config.quantum = quantum;
        self
    }

    /// Thread-cache capacity (0 disables reuse).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.thread_cache_capacity = capacity;
        self
    }

    /// Connect to (or create) the named shared instance instead of a private one.
    pub fn shared(mut self, name: impl Into<String>) -> Self {
        self.connect_name = Some(name.into());
        self
    }

    /// Build the instance.
    pub fn build(self) -> Usf {
        let mut config = self.config;
        if let Some(name) = self.connect_name {
            config.instance_name = Some(name);
        }
        Usf::new(config)
    }
}

/// A USF instance: the user-space scheduler plus the thread cache.
#[derive(Clone)]
pub struct Usf {
    inner: Arc<UsfInner>,
}

impl std::fmt::Debug for Usf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Usf")
            .field("cores", &self.topology().num_cores())
            .field("policy", &self.inner.config.policy)
            .finish()
    }
}

impl Usf {
    /// Builder with the default configuration.
    pub fn builder() -> UsfBuilder {
        UsfBuilder::new()
    }

    /// Create an instance from an explicit configuration.
    pub fn new(config: UsfConfig) -> Usf {
        let nosv = match &config.instance_name {
            Some(name) => NosvInstance::connect(name, config.to_nosv()),
            None => NosvInstance::new(config.to_nosv()),
        };
        let cache = ThreadCache::new(config.thread_cache_capacity);
        Usf {
            inner: Arc::new(UsfInner {
                nosv,
                cache,
                config,
            }),
        }
    }

    /// Create an instance from the `USF_*` environment variables; `None` when `USF_ENABLE`
    /// is unset (the application should fall back to [`crate::exec::ExecMode::Os`]).
    pub fn from_env() -> Option<Usf> {
        match UsfConfig::from_env() {
            Ok(Some(cfg)) => Some(Usf::new(cfg)),
            _ => None,
        }
    }

    /// Connect to (or create) the named shared instance — the stand-in for several OS
    /// processes attaching to the same nOS-V shared-memory segment.
    pub fn connect(name: &str, mut config: UsfConfig) -> Usf {
        config.instance_name = Some(name.to_string());
        Usf::new(config)
    }

    /// Register a process domain and return a handle for spawning threads in it.
    pub fn process(&self, name: impl Into<String>) -> ProcessHandle {
        let name = name.into();
        let pid = self.inner.nosv.register_process(name.clone());
        ProcessHandle {
            inner: Arc::clone(&self.inner),
            pid,
            name,
        }
    }

    /// The underlying nOS-V instance (advanced use).
    pub fn nosv(&self) -> &NosvInstance {
        &self.inner.nosv
    }

    /// The virtual topology managed by the scheduler.
    pub fn topology(&self) -> &Topology {
        self.inner.nosv.scheduler().topology()
    }

    /// Configuration the instance was built with.
    pub fn config(&self) -> &UsfConfig {
        &self.inner.config
    }

    /// Scheduler metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.nosv.metrics()
    }

    /// Unified observability snapshot (counters + gauges + stage histograms). Takes the
    /// scheduler lock once; see [`usf_nosv::StatsSnapshot`].
    pub fn stats_snapshot(&self) -> usf_nosv::StatsSnapshot {
        self.inner.nosv.stats_snapshot()
    }

    /// Start a background stats sampler on the shared scheduler (lock-free gauges only;
    /// see [`usf_nosv::StatsSampler`]). Off unless called.
    pub fn start_sampler(&self, period: std::time::Duration) -> usf_nosv::StatsSampler {
        self.inner.nosv.start_sampler(period)
    }

    /// Thread-cache statistics.
    pub fn thread_cache_stats(&self) -> ThreadCacheStats {
        self.inner.cache.stats()
    }

    /// Shut the instance down: release every task from scheduler control and terminate and
    /// join the cached worker threads. Call after joining application threads; must not be
    /// called from a thread spawned by this instance.
    ///
    /// The worker joins are bounded (see
    /// [`crate::thread::DEFAULT_SHUTDOWN_TIMEOUT`]): a worker wedged in user code is
    /// abandoned rather than hanging the teardown forever. Use [`Usf::shutdown_timeout`]
    /// to pick the deadline and learn who straggled.
    pub fn shutdown(&self) {
        let _ = self.shutdown_timeout(crate::thread::DEFAULT_SHUTDOWN_TIMEOUT);
    }

    /// Install a seeded [`usf_nosv::FaultPlan`] into the shared scheduler, returning the
    /// [`usf_nosv::FaultState`] the chaos harness asserts against. Install-once per
    /// scheduler instance.
    #[cfg(feature = "fault-inject")]
    pub fn install_faults(&self, plan: &usf_nosv::FaultPlan) -> Arc<usf_nosv::FaultState> {
        self.inner.nosv.install_faults(plan)
    }

    /// [`Usf::shutdown`] with an explicit join deadline, reporting which workers were
    /// joined and which were still running when the deadline expired (those are left
    /// running detached — the graceful-degradation contract is that a stuck worker costs
    /// an OS thread, never a hung teardown).
    pub fn shutdown_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> crate::thread::ThreadShutdownReport {
        self.inner.nosv.shutdown();
        self.inner.cache.shutdown_timeout(timeout)
    }
}

/// A process domain registered with a USF instance.
#[derive(Clone)]
pub struct ProcessHandle {
    inner: Arc<UsfInner>,
    pid: ProcessId,
    name: String,
}

impl std::fmt::Debug for ProcessHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessHandle")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .finish()
    }
}

impl ProcessHandle {
    /// The process-domain identifier.
    pub fn id(&self) -> ProcessId {
        self.pid
    }

    /// The process-domain name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The owning instance.
    pub fn usf(&self) -> Usf {
        Usf {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Spawn a cooperative thread in this process domain (the `pthread_create` analog): the
    /// thread attaches as a scheduler worker, runs `f` once granted a core, and is recycled
    /// through the thread cache when `f` returns.
    pub fn spawn<F, T>(&self, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        spawn_on(&self.inner.nosv, &self.inner.cache, self.pid, None, f)
    }

    /// Like [`ProcessHandle::spawn`] with a thread/task label (diagnostics).
    pub fn spawn_named<F, T>(&self, name: impl Into<String>, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        spawn_on(
            &self.inner.nosv,
            &self.inner.cache,
            self.pid,
            Some(name.into()),
            f,
        )
    }

    /// Attach the *calling* thread to this process domain (the main thread of a process in
    /// the paper's model). While the guard is alive the thread occupies a virtual core and
    /// all USF primitives use the cooperative path. Dropping the guard detaches.
    pub fn attach_current(&self) -> AttachGuard {
        let handle = self.inner.nosv.attach(self.pid, Some("attached-main"));
        set_current(CurrentCtx {
            task: handle.task().clone(),
            nosv: self.inner.nosv.clone(),
            process: self.pid,
        });
        AttachGuard {
            handle: Some(handle),
        }
    }

    /// Restrict (or, with `None`, un-restrict) this process domain to a set of virtual
    /// cores — NUMA-aware placement (§5.6): the scheduler only grants the domain's
    /// threads cores from the set, on the immediate-grant path and on every policy pick
    /// tier. Cores outside the instance topology are dropped; a fully out-of-range set
    /// leaves the domain unrestricted.
    pub fn restrict_to_cores(&self, cores: Option<Vec<usf_nosv::CoreId>>) {
        self.inner
            .nosv
            .scheduler()
            .set_process_domain(self.pid, cores);
    }

    /// Deregister the process domain from the scheduler's quantum rotation. Live threads of
    /// the domain keep running.
    pub fn deregister(&self) {
        self.inner.nosv.deregister_process(self.pid);
    }

    /// Forcibly reclaim the process domain mid-run — the stand-in for the OS process
    /// dying (`kill -9`) while its tasks are queued, running and blocked. Queued work is
    /// dropped, running tasks are evicted (their cores immediately re-dispatched to
    /// co-tenants) and every thread parked on one of the domain's tasks resumes as a
    /// plain OS thread. Co-tenant process domains are unaffected.
    pub fn kill(&self) -> usf_nosv::KillReport {
        self.inner.nosv.kill_process(self.pid)
    }
}

/// Guard returned by [`ProcessHandle::attach_current`]; detaches the thread on drop.
#[derive(Debug)]
pub struct AttachGuard {
    handle: Option<TaskHandle>,
}

impl AttachGuard {
    /// The attached task's handle (for yields, timed waits, diagnostics).
    pub fn task_handle(&self) -> &TaskHandle {
        self.handle.as_ref().expect("guard not yet dropped")
    }
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        clear_current();
        if let Some(h) = self.handle.take() {
            h.detach();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn builder_configures_instance() {
        let usf = Usf::builder()
            .cores(3)
            .numa_nodes(1)
            .cache_capacity(4)
            .build();
        assert_eq!(usf.topology().num_cores(), 3);
        assert_eq!(usf.config().thread_cache_capacity, 4);
        usf.shutdown();
    }

    #[test]
    fn spawn_join_round_trip() {
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("app");
        let h = p.spawn(|| 1 + 1);
        assert_eq!(h.join().unwrap(), 2);
        usf.shutdown();
    }

    #[test]
    fn many_threads_one_core_all_finish() {
        let usf = Usf::builder().cores(1).build();
        let p = usf.process("app");
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let c = Arc::clone(&counter);
                p.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        usf.shutdown();
    }

    #[test]
    fn two_process_domains_share_the_scheduler() {
        let usf = Usf::builder().cores(2).build();
        let pa = usf.process("a");
        let pb = usf.process("b");
        assert_ne!(pa.id(), pb.id());
        let ha = pa.spawn(|| "a");
        let hb = pb.spawn(|| "b");
        assert_eq!(ha.join().unwrap(), "a");
        assert_eq!(hb.join().unwrap(), "b");
        let m = usf.metrics();
        assert_eq!(m.attaches, 2);
        usf.shutdown();
    }

    #[test]
    fn restricted_process_domain_runs_only_on_its_cores() {
        let usf = Usf::builder().cores(4).numa_nodes(2).build();
        let p = usf.process("pinned");
        p.restrict_to_cores(Some(vec![2, 3]));
        let handles: Vec<_> = (0..8)
            .map(|_| p.spawn(|| crate::affinity::current_scheduler_core().unwrap()))
            .collect();
        for h in handles {
            let core = h.join().unwrap();
            assert!(core >= 2, "pinned thread observed on core {core}");
        }
        usf.shutdown();
    }

    #[test]
    fn connect_by_name_shares_cores() {
        let a = Usf::connect("usf-runtime-shared-test", UsfConfig::with_cores(5));
        let b = Usf::connect("usf-runtime-shared-test", UsfConfig::with_cores(9));
        assert_eq!(a.topology().num_cores(), 5);
        assert_eq!(
            b.topology().num_cores(),
            5,
            "second connect joins the existing instance"
        );
        usf_nosv::NosvInstance::disconnect_name("usf-runtime-shared-test");
        a.shutdown();
    }

    #[test]
    fn attach_current_enables_cooperative_context() {
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("main-proc");
        assert!(!crate::current::is_attached());
        {
            let _guard = p.attach_current();
            assert!(crate::current::is_attached());
        }
        assert!(!crate::current::is_attached());
        usf.shutdown();
    }

    #[test]
    fn thread_cache_reuses_across_sequential_spawns() {
        let usf = Usf::builder().cores(2).cache_capacity(8).build();
        let p = usf.process("app");
        for _ in 0..5 {
            p.spawn(|| ()).join().unwrap();
            // Give the finished worker a moment to park itself in the cache before the next
            // spawn (the cache hand-back happens after the join event is set).
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let stats = usf.thread_cache_stats();
        assert_eq!(stats.created + stats.reused, 5);
        assert!(
            stats.reused >= 1,
            "sequential spawn/join must hit the cache: {stats:?}"
        );
        usf.shutdown();
    }

    #[test]
    fn shutdown_racing_a_panicking_task_neither_hangs_nor_leaks() {
        // Regression: shutdown used to join workers unboundedly, so a worker stuck
        // between its panic and its cache hand-back could wedge teardown. The panicking
        // task must surface as Err on its join handle, and the bounded shutdown must
        // join everything with no stragglers.
        let usf = Usf::builder().cores(1).build();
        let p = usf.process("app");
        let h = p.spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            panic!("injected task panic");
        });
        // Race teardown against the still-running (and about to panic) task.
        let report = usf.shutdown_timeout(std::time::Duration::from_secs(10));
        assert!(
            report.clean(),
            "panicking worker must still be joinable: {report:?}"
        );
        assert!(h.join().is_err(), "panic must surface on the join path");
    }

    #[test]
    fn killed_process_releases_workers_and_spares_cotenants() {
        use std::sync::atomic::AtomicBool;
        let usf = Usf::builder().cores(1).build();
        let victim = usf.process("victim");
        let stop = Arc::new(AtomicBool::new(false));
        let started = Arc::new(AtomicUsize::new(0));
        // Three workers on one core: one runs, the others park in attach. Killing the
        // process must release all of them (they continue as plain OS threads).
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let stop = Arc::clone(&stop);
                let started = Arc::clone(&started);
                victim.spawn(move || {
                    started.fetch_add(1, Ordering::SeqCst);
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                })
            })
            .collect();
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let report = victim.kill();
        assert!(
            report.running_preempted + report.waiters_released + report.queued_reclaimed >= 1,
            "kill must have reclaimed something: {report:?}"
        );
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            // Terminates, never hangs: workers attached before the kill finish normally,
            // ones that lost the attach race surface an error.
            let _ = h.join();
        }
        // The freed core serves co-tenants as if the victim never existed.
        let co = usf.process("cotenant");
        assert_eq!(co.spawn(|| 7).join().unwrap(), 7);
        assert_eq!(usf.metrics().processes_killed, 1);
        usf.shutdown();
    }

    #[test]
    fn from_env_disabled_returns_none() {
        // USF_ENABLE is not set in the test environment.
        if std::env::var("USF_ENABLE").is_err() {
            assert!(Usf::from_env().is_none());
        }
    }
}
