//! Execution modes: the "glibcv enabled / glibcv disabled" switch of Figure 1.
//!
//! Every workload, runtime and benchmark in this repository is written against [`ExecMode`]
//! so that the *same* code runs either
//!
//! * [`ExecMode::Os`] — plain `std::thread` spawning; blocking primitives fall back to OS
//!   parking; the Linux kernel scheduler time-slices the (oversubscribed) threads. This is
//!   the paper's *Baseline*.
//! * [`ExecMode::Usf`] — threads are cooperative USF workers of a process domain; blocking
//!   primitives are scheduling points; SCHED_COOP (or another installed policy) decides who
//!   runs. This is the paper's *SCHED_COOP* configuration.

use crate::error::UsfError;
use crate::runtime::ProcessHandle;
use crate::thread::JoinHandle;

/// How threads of a workload are created and scheduled.
#[derive(Clone, Debug)]
pub enum ExecMode {
    /// Plain OS threads under the kernel scheduler (the oversubscribed baseline).
    Os,
    /// Cooperative USF threads of the given process domain (SCHED_COOP).
    Usf(ProcessHandle),
}

impl ExecMode {
    /// Human-readable name used by benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Os => "baseline-os",
            ExecMode::Usf(_) => "sched_coop",
        }
    }

    /// Whether this mode schedules cooperatively through USF.
    pub fn is_cooperative(&self) -> bool {
        matches!(self, ExecMode::Usf(_))
    }

    /// Spawn a thread according to the mode.
    pub fn spawn<F, T>(&self, f: F) -> ExecJoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match self {
            ExecMode::Os => ExecJoinHandle::Os(std::thread::spawn(f)),
            ExecMode::Usf(p) => ExecJoinHandle::Usf(p.spawn(f)),
        }
    }

    /// Spawn a named thread according to the mode.
    pub fn spawn_named<F, T>(&self, name: impl Into<String>, f: F) -> ExecJoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match self {
            ExecMode::Os => ExecJoinHandle::Os(
                std::thread::Builder::new()
                    .name(name.into())
                    .spawn(f)
                    .expect("failed to spawn OS thread"),
            ),
            ExecMode::Usf(p) => ExecJoinHandle::Usf(p.spawn_named(name, f)),
        }
    }

    /// The process handle, when in USF mode.
    pub fn process(&self) -> Option<&ProcessHandle> {
        match self {
            ExecMode::Os => None,
            ExecMode::Usf(p) => Some(p),
        }
    }
}

/// Join handle for a thread spawned through [`ExecMode::spawn`].
#[derive(Debug)]
pub enum ExecJoinHandle<T> {
    /// Handle to a plain OS thread.
    Os(std::thread::JoinHandle<T>),
    /// Handle to a cooperative USF thread.
    Usf(JoinHandle<T>),
}

impl<T> ExecJoinHandle<T> {
    /// Wait for the thread and return its result (propagating panics as errors).
    pub fn join(self) -> std::thread::Result<T> {
        match self {
            ExecJoinHandle::Os(h) => h.join(),
            ExecJoinHandle::Usf(h) => h.join(),
        }
    }

    /// Join, mapping panics to [`UsfError`].
    pub fn join_result(self) -> Result<T, UsfError> {
        self.join().map_err(|e| {
            let msg = e
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| e.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            UsfError::ThreadPanicked(msg)
        })
    }

    /// Whether the thread has finished (best effort; always `false` for running threads).
    pub fn is_finished(&self) -> bool {
        match self {
            ExecJoinHandle::Os(h) => h.is_finished(),
            ExecJoinHandle::Usf(h) => h.is_finished(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Usf;

    #[test]
    fn os_mode_spawns_plain_threads() {
        let mode = ExecMode::Os;
        assert!(!mode.is_cooperative());
        assert_eq!(mode.label(), "baseline-os");
        assert!(mode.process().is_none());
        let h = mode.spawn(|| 3);
        assert_eq!(h.join().unwrap(), 3);
    }

    #[test]
    fn usf_mode_spawns_cooperative_threads() {
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("exec-test");
        let mode = ExecMode::Usf(p);
        assert!(mode.is_cooperative());
        assert_eq!(mode.label(), "sched_coop");
        assert!(mode.process().is_some());
        let h = mode.spawn_named("worker", || 4);
        assert_eq!(h.join().unwrap(), 4);
        assert_eq!(usf.metrics().attaches, 1);
        usf.shutdown();
    }

    #[test]
    fn join_result_maps_panics() {
        let mode = ExecMode::Os;
        let h = mode.spawn(|| -> i32 { panic!("bad {}", 1) });
        let err = h.join_result().unwrap_err();
        assert!(matches!(err, UsfError::ThreadPanicked(m) if m.contains("bad 1")));
    }

    #[test]
    fn both_modes_run_the_same_closure() {
        let usf = Usf::builder().cores(2).build();
        let modes = [ExecMode::Os, ExecMode::Usf(usf.process("p"))];
        for mode in modes {
            let hs: Vec<_> = (0..4).map(|i| mode.spawn(move || i * i)).collect();
            let total: i32 = hs.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 14);
        }
        usf.shutdown();
    }
}
