//! Canned scenario library — the co-run experiments the paper argues about, as data.

use crate::spec::{Arrival, ProblemSize, ProcSpec, ScenarioSpec, WorkloadKind};
use std::time::Duration;
use usf_workloads::workload::RuntimeFlavor;

/// A solo run: one process of the given kind using the whole core budget (the baseline
/// every slowdown is measured against).
pub fn solo(kind: WorkloadKind, cores: usize, size: ProblemSize) -> ScenarioSpec {
    ScenarioSpec::new(format!("solo-{}", kind.label()), cores).process(
        ProcSpec::new(kind.label(), kind)
            .size(size)
            .threads(cores)
            .units(4),
    )
}

/// The HPC pair (§5.3/§5.4 shape): a nested matmul and a Cholesky factorization co-run,
/// each sized for the whole node — 2× mutual oversubscription between two task-parallel
/// runtimes.
pub fn hpc_pair(cores: usize, size: ProblemSize) -> ScenarioSpec {
    ScenarioSpec::new("hpc-pair", cores)
        .process(
            ProcSpec::new("matmul", WorkloadKind::Matmul)
                .size(size)
                .flavor(RuntimeFlavor::TaskRt)
                .threads(cores)
                .units(2),
        )
        .process(
            ProcSpec::new("cholesky", WorkloadKind::Cholesky)
                .size(size)
                .flavor(RuntimeFlavor::ThreadPool)
                .threads(cores)
                .units(2),
        )
}

/// Latency-vs-batch co-location (§5.5 shape): an open-loop inference service sharing the
/// node with an imbalanced MD batch job that wants every core.
pub fn latency_batch(cores: usize, size: ProblemSize) -> ScenarioSpec {
    ScenarioSpec::new("latency-batch", cores)
        .process(
            ProcSpec::new("service", WorkloadKind::Microservices)
                .size(size)
                .flavor(RuntimeFlavor::ThreadPool)
                .threads(cores.div_ceil(2))
                .units(8),
        )
        .process(
            ProcSpec::new("batch", WorkloadKind::Md)
                .size(size)
                .flavor(RuntimeFlavor::ForkJoin)
                .threads(cores)
                .units(4),
        )
}

/// The oversubscription ramp behind `fig6_oversub`: `factor` identical MD-ensemble
/// processes, each demanding the whole core budget (so total demand = `factor ×` the
/// node), arriving in a short ramp. Under SCHED_COOP the per-process slowdown stays near
/// the ideal `factor ×` time-sharing line; under the preemptive baseline the busy-wait
/// unit joins burn quanta and the slowdown grows past it.
pub fn oversub_ramp(cores: usize, factor: usize, size: ProblemSize) -> ScenarioSpec {
    // Stagger by roughly one per-thread unit so the ramp is visible but every process
    // overlaps all the others for most of its run (unit_work is the demand summed over
    // the process's `cores` threads).
    let stagger = Duration::from_secs_f64(size.unit_work().as_secs_f64() / cores.max(1) as f64);
    let mut spec = ScenarioSpec::new(format!("oversub-ramp-{factor}x"), cores);
    for i in 0..factor.max(1) {
        spec = spec.process(
            ProcSpec::new(format!("ensemble-{i}"), WorkloadKind::Md)
                .size(size)
                .flavor(RuntimeFlavor::ForkJoin)
                .threads(cores)
                .units(6)
                .arrival(Arrival::Ramp { stagger }),
        );
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_specs_have_the_advertised_shape() {
        let solo = solo(WorkloadKind::Matmul, 4, ProblemSize::Tiny);
        assert_eq!(solo.procs.len(), 1);
        assert_eq!(solo.oversubscription(), 1.0);

        let pair = hpc_pair(4, ProblemSize::Tiny);
        assert_eq!(pair.procs.len(), 2);
        assert_eq!(pair.oversubscription(), 2.0);

        let lb = latency_batch(4, ProblemSize::Tiny);
        assert_eq!(lb.procs.len(), 2);
        assert!(lb.oversubscription() > 1.0);

        for factor in [1, 2, 4, 8] {
            let ramp = oversub_ramp(4, factor, ProblemSize::Tiny);
            assert_eq!(ramp.procs.len(), factor);
            assert_eq!(ramp.oversubscription(), factor as f64);
            // The ramp arrives strictly in spec order.
            assert_eq!(ramp.plan().arrival_order(), (0..factor).collect::<Vec<_>>());
        }
    }
}
