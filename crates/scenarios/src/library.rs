//! Canned scenario library — the co-run experiments the paper argues about, as data.

use crate::spec::{
    Arrival, FaultPlanSpec, FaultSite, FaultSpec, ProblemSize, ProcSpec, ScenarioSpec, WorkloadKind,
};
use std::time::Duration;
use usf_workloads::workload::RuntimeFlavor;

/// A solo run: one process of the given kind using the whole core budget (the baseline
/// every slowdown is measured against).
pub fn solo(kind: WorkloadKind, cores: usize, size: ProblemSize) -> ScenarioSpec {
    ScenarioSpec::new(format!("solo-{}", kind.label()), cores).process(
        ProcSpec::new(kind.label(), kind)
            .size(size)
            .threads(cores)
            .units(4),
    )
}

/// The HPC pair (§5.3/§5.4 shape): a nested matmul and a Cholesky factorization co-run,
/// each sized for the whole node — 2× mutual oversubscription between two task-parallel
/// runtimes.
pub fn hpc_pair(cores: usize, size: ProblemSize) -> ScenarioSpec {
    ScenarioSpec::new("hpc-pair", cores)
        .process(
            ProcSpec::new("matmul", WorkloadKind::Matmul)
                .size(size)
                .flavor(RuntimeFlavor::TaskRt)
                .threads(cores)
                .units(2),
        )
        .process(
            ProcSpec::new("cholesky", WorkloadKind::Cholesky)
                .size(size)
                .flavor(RuntimeFlavor::ThreadPool)
                .threads(cores)
                .units(2),
        )
}

/// Latency-vs-batch co-location (§5.5 shape): an open-loop inference service sharing the
/// node with an imbalanced MD batch job that wants every core.
pub fn latency_batch(cores: usize, size: ProblemSize) -> ScenarioSpec {
    ScenarioSpec::new("latency-batch", cores)
        .process(
            ProcSpec::new("service", WorkloadKind::Microservices)
                .size(size)
                .flavor(RuntimeFlavor::ThreadPool)
                .threads(cores.div_ceil(2))
                .units(8),
        )
        .process(
            ProcSpec::new("batch", WorkloadKind::Md)
                .size(size)
                .flavor(RuntimeFlavor::ForkJoin)
                .threads(cores)
                .units(4),
        )
}

/// The oversubscription ramp behind `fig6_oversub`: `factor` identical MD-ensemble
/// processes, each demanding the whole core budget (so total demand = `factor ×` the
/// node), arriving in a short ramp. Under SCHED_COOP the per-process slowdown stays near
/// the ideal `factor ×` time-sharing line; under the preemptive baseline the busy-wait
/// unit joins burn quanta and the slowdown grows past it.
pub fn oversub_ramp(cores: usize, factor: usize, size: ProblemSize) -> ScenarioSpec {
    // Stagger by roughly one per-thread unit so the ramp is visible but every process
    // overlaps all the others for most of its run (unit_work is the demand summed over
    // the process's `cores` threads).
    let stagger = Duration::from_secs_f64(size.unit_work().as_secs_f64() / cores.max(1) as f64);
    let mut spec = ScenarioSpec::new(format!("oversub-ramp-{factor}x"), cores);
    for i in 0..factor.max(1) {
        spec = spec.process(
            ProcSpec::new(format!("ensemble-{i}"), WorkloadKind::Md)
                .size(size)
                .flavor(RuntimeFlavor::ForkJoin)
                .threads(cores)
                .units(6)
                .arrival(Arrival::Ramp { stagger }),
        );
    }
    spec
}

/// The mixed-size ramp: processes of *different* widths and unit costs arriving in a
/// staggered ramp — a wide imbalanced MD job, a half-width medium co-runner, a narrow
/// fast one, and a late-arriving half-cost spike, together ~2.75× oversubscribed. The
/// heterogeneous demands are what separate the static splits (bl-eq strands cores on the
/// narrow processes while the wide one starves) from the cooperative scheduler.
pub fn mixed_size_ramp(cores: usize, size: ProblemSize) -> ScenarioSpec {
    let base = size.unit_work();
    let stagger = Duration::from_secs_f64(base.as_secs_f64() / cores.max(1) as f64);
    let custom = |frac: u64| ProblemSize::Custom {
        unit_work_us: (base.as_micros() as u64 / frac).max(1),
    };
    ScenarioSpec::new("mixed-size-ramp", cores)
        .process(
            ProcSpec::new("wide-md", WorkloadKind::Md)
                .size(size)
                .flavor(RuntimeFlavor::ForkJoin)
                .threads(cores)
                .units(4)
                .arrival(Arrival::Ramp { stagger }),
        )
        .process(
            ProcSpec::new("half-spin", WorkloadKind::SpinSleep)
                .size(custom(2))
                .flavor(RuntimeFlavor::ThreadPool)
                .threads(cores.div_ceil(2))
                .units(6)
                .arrival(Arrival::Ramp { stagger }),
        )
        .process(
            ProcSpec::new("narrow-spin", WorkloadKind::SpinSleep)
                .size(custom(4))
                .flavor(RuntimeFlavor::TaskRt)
                .threads(cores.div_ceil(4))
                .units(8)
                .arrival(Arrival::Ramp { stagger }),
        )
        .process(
            ProcSpec::new("late-spike", WorkloadKind::Md)
                .size(custom(2))
                .flavor(RuntimeFlavor::ForkJoin)
                .threads(cores)
                .units(2)
                .arrival(Arrival::Delayed(Duration::from_secs_f64(
                    base.as_secs_f64() / 2.0,
                ))),
        )
}

/// The bursty antagonist: an open-loop inference service sharing the node with a sparse
/// Poisson-paced burst source *and* a full-width imbalanced batch antagonist that arrives
/// mid-run — ~2.5× oversubscribed at peak. The service's tail latency under each
/// scheduling model is the interesting output (the §5.5 tension: partitioning isolates
/// the service but strands its idle cores; SCHED_COOP donates them).
pub fn bursty_antagonist(cores: usize, size: ProblemSize) -> ScenarioSpec {
    let base = size.unit_work();
    ScenarioSpec::new("bursty-antagonist", cores)
        .process(
            ProcSpec::new("service", WorkloadKind::Microservices)
                .size(size)
                .flavor(RuntimeFlavor::ThreadPool)
                .threads(cores.div_ceil(2))
                .units(8),
        )
        .process(
            ProcSpec::new("bursts", WorkloadKind::PoissonBurst)
                .size(size)
                .flavor(RuntimeFlavor::ForkJoin)
                .threads(cores)
                .units(3),
        )
        .process(
            ProcSpec::new("antagonist", WorkloadKind::Md)
                .size(size)
                .flavor(RuntimeFlavor::ForkJoin)
                .threads(cores)
                .units(4)
                .arrival(Arrival::Delayed(Duration::from_secs_f64(
                    base.as_secs_f64(),
                ))),
        )
}

/// The chaos co-run: a three-process oversubscribed mix under a seeded fault schedule —
/// the victim dies mid-run, the panicky batch job loses units to injected body panics,
/// and the steady co-tenant must come through untouched. Scheduler-level sites
/// (duplicated wakeups, delayed intake drains, a 120ms worker stall the watchdog must
/// flag) ride along on stacks built with `fault-inject`. Stacks without an injection
/// plane (the simulator) run the clean lowering of the same processes.
pub fn chaos(cores: usize, size: ProblemSize) -> ScenarioSpec {
    ScenarioSpec::new("chaos", cores)
        .process(
            ProcSpec::new("victim", WorkloadKind::SpinSleep)
                .size(size)
                .flavor(RuntimeFlavor::ThreadPool)
                .threads(cores.div_ceil(2))
                .units(6),
        )
        .process(
            ProcSpec::new("panicky", WorkloadKind::Md)
                .size(size)
                .flavor(RuntimeFlavor::ForkJoin)
                .threads(cores)
                .units(4),
        )
        .process(
            ProcSpec::new("steady", WorkloadKind::SpinSleep)
                .size(size)
                .flavor(RuntimeFlavor::TaskRt)
                .threads(cores.div_ceil(2))
                .units(4),
        )
        .with_faults(
            FaultPlanSpec::new(0xC4A0_5C4A)
                .panics(3, 2)
                .kill(0, 2)
                .sched_site(FaultSpec::new(FaultSite::DuplicateWakeup).one_in(5))
                .sched_site(FaultSpec::new(FaultSite::DelayIntakeDrain).one_in(7))
                .sched_site(
                    FaultSpec::new(FaultSite::WorkerStall)
                        .one_in(1)
                        .max_fires(1)
                        .stall(Duration::from_millis(120)),
                ),
        )
}

/// Every canned entry at one `(cores, size)` point — what `fig7_models` sweeps and the
/// library-coverage tests run. Order: solo, the pairs, the ramps, the mixed entries, the
/// chaos entry.
pub fn all(cores: usize, size: ProblemSize) -> Vec<ScenarioSpec> {
    vec![
        solo(WorkloadKind::Md, cores, size),
        hpc_pair(cores, size),
        latency_batch(cores, size),
        oversub_ramp(cores, 2, size),
        oversub_ramp(cores, 4, size),
        mixed_size_ramp(cores, size),
        bursty_antagonist(cores, size),
        chaos(cores, size),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_specs_have_the_advertised_shape() {
        let solo = solo(WorkloadKind::Matmul, 4, ProblemSize::Tiny);
        assert_eq!(solo.procs.len(), 1);
        assert_eq!(solo.oversubscription(), 1.0);

        let pair = hpc_pair(4, ProblemSize::Tiny);
        assert_eq!(pair.procs.len(), 2);
        assert_eq!(pair.oversubscription(), 2.0);

        let lb = latency_batch(4, ProblemSize::Tiny);
        assert_eq!(lb.procs.len(), 2);
        assert!(lb.oversubscription() > 1.0);

        for factor in [1, 2, 4, 8] {
            let ramp = oversub_ramp(4, factor, ProblemSize::Tiny);
            assert_eq!(ramp.procs.len(), factor);
            assert_eq!(ramp.oversubscription(), factor as f64);
            // The ramp arrives strictly in spec order.
            assert_eq!(ramp.plan().arrival_order(), (0..factor).collect::<Vec<_>>());
        }

        let mixed = mixed_size_ramp(8, ProblemSize::Tiny);
        assert_eq!(mixed.procs.len(), 4);
        assert!(
            mixed.oversubscription() >= 2.0,
            "mixed ramp must oversubscribe ≥2x ({})",
            mixed.oversubscription()
        );
        // Heterogeneous widths are the point of the entry.
        let widths: std::collections::HashSet<usize> =
            mixed.procs.iter().map(|p| p.threads).collect();
        assert!(widths.len() >= 3, "{widths:?}");

        let bursty = bursty_antagonist(8, ProblemSize::Tiny);
        assert_eq!(bursty.procs.len(), 3);
        assert!(bursty.oversubscription() >= 2.0);
        assert!(bursty
            .procs
            .iter()
            .any(|p| p.kind == WorkloadKind::Microservices));
        assert!(bursty.procs.iter().any(|p| p.kind == WorkloadKind::Md));

        let chaos = chaos(4, ProblemSize::Tiny);
        assert_eq!(chaos.procs.len(), 3);
        assert!(chaos.oversubscription() >= 2.0);
        let fs = chaos.faults.as_ref().expect("chaos arms a fault schedule");
        assert!(fs.panic_one_in > 0 && fs.kill_proc.is_some());
        assert!(
            fs.kill_after_units >= 1 && fs.kill_after_units < chaos.procs[0].units,
            "the victim must die strictly mid-run"
        );
        assert!(!fs.sched_sites.is_empty());
        // The steady co-tenant is the survivorship control: not the kill victim.
        assert_ne!(fs.kill_proc, Some(2));
    }

    #[test]
    fn all_enumerates_every_entry_with_unique_names() {
        let entries = all(8, ProblemSize::Tiny);
        assert!(entries.len() >= 7);
        let names: std::collections::HashSet<String> =
            entries.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), entries.len(), "scenario names must be unique");
        for spec in &entries {
            assert!(!spec.procs.is_empty(), "{}", spec.name);
            // Every entry lowers into a plan (pure, deterministic).
            assert_eq!(spec.plan().procs.len(), spec.procs.len());
        }
        // The library spans the oversubscription axis, including >= 2x points.
        assert!(entries.iter().any(|s| s.oversubscription() <= 1.0));
        assert!(
            entries
                .iter()
                .filter(|s| s.oversubscription() >= 2.0)
                .count()
                >= 4
        );
    }
}
