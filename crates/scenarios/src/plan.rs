//! Deterministic lowering of a [`ScenarioSpec`] into a concrete [`ScenarioPlan`].
//!
//! The plan is the single source of truth all three executors consume: arrival phases are
//! expanded into absolute arrival times (Poisson draws are seeded, so the plan of a spec
//! is a pure function of the spec), and every process carries its resolved unit count,
//! thread demand and nominal unit cost. The lowering-equivalence property test pins the
//! executors to this structure.

use crate::spec::{Arrival, Placement, ProcSpec, ScenarioSpec, WorkloadKind};
use std::time::Duration;
use usf_nosv::{CoreId, Topology};
use usf_workloads::poisson::PoissonProcess;
use usf_workloads::workload::RuntimeFlavor;

/// One process of a resolved plan.
#[derive(Debug, Clone)]
pub struct ProcPlan {
    /// Position in the spec (stable identifier across executors).
    pub index: usize,
    /// Display name.
    pub name: String,
    /// Absolute arrival time relative to scenario start.
    pub arrival: Duration,
    /// Thread/core demand.
    pub threads: usize,
    /// Units of work.
    pub units: usize,
    /// Nominal on-core work per unit, summed over the process's threads.
    pub unit_work: Duration,
    /// Workload kind.
    pub kind: WorkloadKind,
    /// Runtime flavour.
    pub flavor: RuntimeFlavor,
    /// NUMA placement (§5.6); lowered into a core mask by
    /// [`ScenarioPlan::placement_masks`].
    pub placement: Placement,
    /// The original process spec (sizes etc. for the real workload constructors).
    pub spec: ProcSpec,
}

impl ProcPlan {
    /// Per-thread imbalance weights of the parallel region, normalized to sum to 1.0 —
    /// uniform except for the MD kind, whose alternating dense/sparse profile (§5.6) is
    /// part of the shared cost model.
    pub fn weights(&self) -> Vec<f64> {
        self.weights_for(self.threads)
    }

    /// [`ProcPlan::weights`] for an explicit region width — the simulator uses this when
    /// it scales the thread demand up to paper-scale core counts.
    pub fn weights_for(&self, n: usize) -> Vec<f64> {
        let n = n.max(1);
        let raw: Vec<f64> = match self.kind {
            WorkloadKind::Md => (0..n)
                .map(|i| if i % 2 == 0 { MD_IMBALANCE } else { 1.0 })
                .collect(),
            _ => vec![1.0; n],
        };
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / total).collect()
    }

    /// Mean pacing gap before each unit (`None` for back-to-back kinds). Part of the
    /// shared cost model: the real workloads draw seeded exponential gaps with this mean,
    /// the simulator lowers the same gaps as off-core sleeps.
    pub fn pacing_gap(&self) -> Option<Duration> {
        let unit_secs = self.unit_work.as_secs_f64();
        match self.kind {
            // A loaded service: gaps ~ unit work (utilization near 1 when solo).
            WorkloadKind::Microservices => Some(Duration::from_secs_f64(unit_secs)),
            // A sparse burst source: long think times between bursts.
            WorkloadKind::PoissonBurst => Some(Duration::from_secs_f64(3.0 * unit_secs)),
            _ => None,
        }
    }

    /// Off-core sleep after each unit's parallel region (`None` for kinds that run units
    /// back to back). Part of the shared cost model: the real spin-sleep workload sleeps
    /// it through the cooperative timer, the simulator lowers it as an off-core sleep op.
    pub fn post_unit_sleep(&self) -> Option<Duration> {
        match self.kind {
            WorkloadKind::SpinSleep => Some(self.unit_work / 4),
            _ => None,
        }
    }

    /// The seeded per-unit pacing gaps (empty for back-to-back kinds).
    pub fn pacing_gaps(&self) -> Vec<Duration> {
        match self.pacing_gap() {
            None => Vec::new(),
            Some(mean) => {
                let rate = 1.0 / mean.as_secs_f64().max(1e-9);
                let mut p = PoissonProcess::new(rate, PACING_SEED_BASE + self.index as u64);
                (0..self.units).map(|_| p.next_gap()).collect()
            }
        }
    }
}

/// Dense-to-sparse per-thread work ratio of the MD kind (the 90/10 atom split of §5.6
/// collapses to roughly one order of magnitude between heavy and light ranks).
pub const MD_IMBALANCE: f64 = 9.0;

/// Seed base of the per-process pacing draws.
const PACING_SEED_BASE: u64 = 0x5eed_0000;

/// Seed base of the Poisson arrival draws.
const ARRIVAL_SEED_BASE: u64 = 0xa441_0000;

/// A fully resolved scenario: what every executor instantiates.
#[derive(Debug, Clone)]
pub struct ScenarioPlan {
    /// Scenario name.
    pub name: String,
    /// Core budget the demands are sized against.
    pub cores: usize,
    /// Resolved processes, in spec order.
    pub procs: Vec<ProcPlan>,
}

impl ScenarioPlan {
    /// Process indices sorted by `(arrival, index)` — the deterministic arrival order the
    /// lowering-equivalence test compares across executors.
    pub fn arrival_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.procs.len()).collect();
        order.sort_by_key(|&i| (self.procs[i].arrival, i));
        order
    }

    /// Lower each process's [`Placement`] into a core mask over the given topology — the
    /// single deterministic lowering every executor consumes (`None` = unrestricted).
    ///
    /// * [`Placement::Node`]`(k)` pins to node `k % nodes` (the full node; co-naming a
    ///   node is the deliberate same-socket contention variant).
    /// * [`Placement::Spread`] processes are assigned to nodes round-robin in spec order;
    ///   the processes landing on one node split its cores contiguously, apportioned by
    ///   thread demand with a one-core floor.
    /// * [`Placement::Packed`] processes split the whole core range contiguously from
    ///   core 0 upward (node-contiguous ids ⇒ fewest sockets), apportioned by thread
    ///   demand with a one-core floor.
    ///
    /// `Spread` and `Packed` masks are therefore pairwise disjoint within each group —
    /// the invariant the placement property test pins. Degenerate specs with more
    /// grouped processes than assignable cores leave the overflow unrestricted rather
    /// than fabricating dead masks.
    pub fn placement_masks(&self, topo: &Topology) -> Vec<Option<Vec<CoreId>>> {
        let nodes = topo.num_numa_nodes();
        let mut masks: Vec<Option<Vec<CoreId>>> = vec![None; self.procs.len()];
        for (i, p) in self.procs.iter().enumerate() {
            if let Placement::Node(k) = p.placement {
                masks[i] = Some(topo.cores_in_node(k % nodes).collect());
            }
        }
        // Spread: round-robin the group over nodes, then split each node among its
        // assignees.
        let spread: Vec<usize> = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.placement == Placement::Spread)
            .map(|(i, _)| i)
            .collect();
        for node in 0..nodes {
            let assignees: Vec<usize> = spread
                .iter()
                .enumerate()
                .filter(|(rank, _)| rank % nodes == node)
                .map(|(_, &i)| i)
                .collect();
            if assignees.is_empty() {
                continue;
            }
            let cores: Vec<CoreId> = topo.cores_in_node(node).collect();
            self.split_among(&assignees, &cores, &mut masks);
        }
        // Packed: split the whole (node-contiguous) core range in spec order.
        let packed: Vec<usize> = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.placement == Placement::Packed)
            .map(|(i, _)| i)
            .collect();
        if !packed.is_empty() {
            let cores: Vec<CoreId> = topo.cores().collect();
            self.split_among(&packed, &cores, &mut masks);
        }
        masks
    }

    /// Split `cores` contiguously among the processes at `indices`, apportioned by thread
    /// demand (largest remainder, one-core floor), writing the resulting masks. Processes
    /// beyond the core count stay unrestricted.
    fn split_among(&self, indices: &[usize], cores: &[CoreId], masks: &mut [Option<Vec<CoreId>>]) {
        let fits = indices.len().min(cores.len());
        if fits == 0 {
            return;
        }
        let weights: Vec<f64> = indices[..fits]
            .iter()
            .map(|&i| self.procs[i].threads.max(1) as f64)
            .collect();
        let counts = apportion_counts(&weights, cores.len());
        let mut next = 0;
        for (slot, &i) in indices[..fits].iter().enumerate() {
            let take = counts[slot];
            masks[i] = Some(cores[next..next + take].to_vec());
            next += take;
        }
    }
}

/// Apportion `total` items among weighted claimants: everyone gets at least one, the rest
/// by largest remainder of the ideal share. `total` must be at least `weights.len()`.
/// Shared by the placement lowering and the bl-eq/bl-opt partition derivation.
pub(crate) fn apportion_counts(weights: &[f64], total: usize) -> Vec<usize> {
    let n = weights.len();
    debug_assert!(total >= n);
    let sum: f64 = weights.iter().sum();
    let spare = total - n;
    let ideals: Vec<f64> = weights
        .iter()
        .map(|w| spare as f64 * (w / sum.max(1e-12)))
        .collect();
    let mut counts: Vec<usize> = ideals.iter().map(|i| 1 + i.floor() as usize).collect();
    let mut leftover = total - counts.iter().sum::<usize>();
    let mut by_remainder: Vec<usize> = (0..n).collect();
    by_remainder.sort_by(|&a, &b| {
        let ra = ideals[a] - ideals[a].floor();
        let rb = ideals[b] - ideals[b].floor();
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut k = 0;
    while leftover > 0 {
        counts[by_remainder[k % n]] += 1;
        leftover -= 1;
        k += 1;
    }
    counts
}

impl ScenarioSpec {
    /// Resolve the spec into the concrete plan (pure: same spec, same plan).
    pub fn plan(&self) -> ScenarioPlan {
        let procs = self
            .procs
            .iter()
            .enumerate()
            .map(|(index, p)| {
                let arrival = match p.arrival {
                    Arrival::Immediate => Duration::ZERO,
                    Arrival::Delayed(d) => d,
                    Arrival::Poisson { rate_per_sec, seed } => {
                        let mut draw = PoissonProcess::new(
                            rate_per_sec.max(1e-6),
                            ARRIVAL_SEED_BASE ^ seed.wrapping_add(index as u64),
                        );
                        draw.next_gap()
                    }
                    Arrival::Ramp { stagger } => stagger * index as u32,
                };
                ProcPlan {
                    index,
                    name: p.name.clone(),
                    arrival,
                    threads: p.threads.max(1),
                    units: p.units.max(1),
                    unit_work: p.size.unit_work(),
                    kind: p.kind,
                    flavor: p.flavor,
                    placement: p.placement,
                    spec: p.clone(),
                }
            })
            .collect();
        ScenarioPlan {
            name: self.name.clone(),
            cores: self.cores,
            procs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProblemSize;

    #[test]
    fn plan_is_deterministic() {
        let spec = ScenarioSpec::new("det", 4)
            .process(
                ProcSpec::new("a", WorkloadKind::Microservices).arrival(Arrival::Poisson {
                    rate_per_sec: 100.0,
                    seed: 3,
                }),
            )
            .process(ProcSpec::new("b", WorkloadKind::Md).arrival(Arrival::Ramp {
                stagger: Duration::from_millis(2),
            }));
        let (p1, p2) = (spec.plan(), spec.plan());
        for (a, b) in p1.procs.iter().zip(&p2.procs) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.pacing_gaps(), b.pacing_gaps());
        }
    }

    #[test]
    fn ramp_staggers_by_index() {
        let stagger = Duration::from_millis(5);
        let mut spec = ScenarioSpec::new("ramp", 2);
        for i in 0..4 {
            spec = spec.process(
                ProcSpec::new(format!("p{i}"), WorkloadKind::SpinSleep)
                    .arrival(Arrival::Ramp { stagger }),
            );
        }
        let plan = spec.plan();
        for (i, p) in plan.procs.iter().enumerate() {
            assert_eq!(p.arrival, stagger * i as u32);
        }
        assert_eq!(plan.arrival_order(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn arrival_order_breaks_ties_by_index() {
        let spec = ScenarioSpec::new("ties", 2)
            .process(
                ProcSpec::new("late", WorkloadKind::SpinSleep)
                    .arrival(Arrival::Delayed(Duration::from_millis(9))),
            )
            .process(ProcSpec::new("a", WorkloadKind::SpinSleep))
            .process(ProcSpec::new("b", WorkloadKind::SpinSleep));
        assert_eq!(spec.plan().arrival_order(), vec![1, 2, 0]);
    }

    #[test]
    fn md_weights_are_imbalanced_normalized() {
        let plan = ScenarioSpec::new("md", 4)
            .process(
                ProcSpec::new("e0", WorkloadKind::Md)
                    .threads(4)
                    .size(ProblemSize::Tiny),
            )
            .plan();
        let w = plan.procs[0].weights();
        assert_eq!(w.len(), 4);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > 5.0 * w[1]);
    }

    #[test]
    fn pacing_only_for_open_loop_kinds() {
        let plan = ScenarioSpec::new("pace", 2)
            .process(ProcSpec::new("svc", WorkloadKind::Microservices).units(3))
            .process(ProcSpec::new("hpc", WorkloadKind::Matmul).units(3))
            .plan();
        assert_eq!(plan.procs[0].pacing_gaps().len(), 3);
        assert!(plan.procs[1].pacing_gaps().is_empty());
    }

    #[test]
    fn node_placement_pins_to_the_full_node() {
        let topo = Topology::new(8, 2);
        let plan = ScenarioSpec::new("pin", 8)
            .process(ProcSpec::new("a", WorkloadKind::Md).placement(Placement::Node(0)))
            .process(ProcSpec::new("b", WorkloadKind::Md).placement(Placement::Node(1)))
            .process(ProcSpec::new("c", WorkloadKind::Md).placement(Placement::Node(5)))
            .process(ProcSpec::new("d", WorkloadKind::Md))
            .plan();
        let masks = plan.placement_masks(&topo);
        assert_eq!(masks[0].as_deref(), Some(&[0usize, 1, 2, 3][..]));
        assert_eq!(masks[1].as_deref(), Some(&[4usize, 5, 6, 7][..]));
        assert_eq!(masks[2], masks[1], "node index wraps modulo the node count");
        assert_eq!(masks[3], None, "Anywhere stays unrestricted");
    }

    #[test]
    fn spread_distributes_over_nodes_then_splits_disjointly() {
        let topo = Topology::new(8, 2);
        let mut spec = ScenarioSpec::new("spread", 8);
        for i in 0..3 {
            spec = spec.process(
                ProcSpec::new(format!("p{i}"), WorkloadKind::Md)
                    .threads(2)
                    .placement(Placement::Spread),
            );
        }
        let masks = spec.plan().placement_masks(&topo);
        // Ranks 0 and 2 land on node 0 and split it; rank 1 owns node 1.
        assert_eq!(masks[0].as_deref(), Some(&[0usize, 1][..]));
        assert_eq!(masks[2].as_deref(), Some(&[2usize, 3][..]));
        assert_eq!(masks[1].as_deref(), Some(&[4usize, 5, 6, 7][..]));
    }

    #[test]
    fn packed_splits_contiguously_by_demand() {
        let topo = Topology::new(8, 2);
        let spec = ScenarioSpec::new("packed", 8)
            .process(
                ProcSpec::new("heavy", WorkloadKind::Md)
                    .threads(6)
                    .placement(Placement::Packed),
            )
            .process(
                ProcSpec::new("light", WorkloadKind::Md)
                    .threads(2)
                    .placement(Placement::Packed),
            );
        let masks = spec.plan().placement_masks(&topo);
        assert_eq!(masks[0].as_deref(), Some(&[0usize, 1, 2, 3, 4, 5][..]));
        assert_eq!(masks[1].as_deref(), Some(&[6usize, 7][..]));
    }

    #[test]
    fn degenerate_placement_groups_leave_overflow_unrestricted() {
        // Three spread processes on a node of one core each: the third spread rank maps
        // back to node 0 whose single core is already taken by rank 0's one-core floor —
        // both fit (1 core each would exceed node size), so fits clamps.
        let topo = Topology::new(2, 2);
        let mut spec = ScenarioSpec::new("degenerate", 2);
        for i in 0..3 {
            spec = spec.process(
                ProcSpec::new(format!("p{i}"), WorkloadKind::SpinSleep)
                    .placement(Placement::Spread),
            );
        }
        let masks = spec.plan().placement_masks(&topo);
        assert_eq!(masks[0].as_deref(), Some(&[0usize][..]));
        assert_eq!(masks[1].as_deref(), Some(&[1usize][..]));
        assert_eq!(masks[2], None, "overflow process stays unrestricted");
    }

    #[test]
    fn post_unit_sleep_only_for_spin_sleep() {
        let plan = ScenarioSpec::new("post", 2)
            .process(ProcSpec::new("ss", WorkloadKind::SpinSleep).size(ProblemSize::Tiny))
            .process(ProcSpec::new("md", WorkloadKind::Md).size(ProblemSize::Tiny))
            .plan();
        assert_eq!(
            plan.procs[0].post_unit_sleep(),
            Some(ProblemSize::Tiny.unit_work() / 4)
        );
        assert_eq!(plan.procs[1].post_unit_sleep(), None);
    }
}
