//! [`SimExecutor`] — lowering a scenario spec into the discrete-event simulator.
//!
//! The same [`ScenarioSpec`] that runs for real on the OS and USF
//! stacks is lowered into a `usf-simsched` program at *paper-scale* core counts: thread
//! demands are scaled by `machine.cores / spec.cores`, every unit becomes a compute phase
//! (with the plan's MD imbalance weights) joined by a busy-wait-with-yield barrier (the
//! patched OpenBLAS/MPICH join of §5.2), and open-loop kinds sleep the plan's seeded
//! arrival gaps. Every unit ends in a `UnitMark` instrumentation op, so reports carry
//! *measured* per-unit completion latencies rather than a fabricated uniform share. The
//! scheduling model is pluggable — the identical spec compares the preemptive fair
//! baseline, SCHED_COOP, and the bl-eq/bl-opt static-partitioning baselines (core maps
//! derived from the plan by [`SimExecutor::partitioned_eq`]/[`SimExecutor::partitioned_opt`])
//! without touching the spec; [`SimExecutor::sweep_models`] runs the whole
//! [`ModelSel`] matrix in one call.

use crate::executor::Executor;
use crate::plan::{ProcPlan, ScenarioPlan};
use crate::report::{ProcessOutcome, ScenarioReport, SchedDelta};
use crate::spec::{ModelSel, ScenarioSpec, WorkloadKind};
use std::time::Duration;
use usf_simsched::{
    BarrierWaitKind, Engine, Machine, ProcessId, Program, SchedModel, SimReport, SimTime, ThreadId,
};

/// Structural shape of one lowered process — what the lowering-equivalence property test
/// compares against the real executors.
#[derive(Debug, Clone)]
pub struct SimProcShape {
    /// Process name (from the spec).
    pub name: String,
    /// Simulator process id.
    pub process: ProcessId,
    /// Thread ids instantiated for the process.
    pub thread_ids: Vec<ThreadId>,
    /// Scaled region width (threads actually spawned).
    pub threads: usize,
    /// Units each thread executes.
    pub units: usize,
    /// Arrival time (unscaled, as planned).
    pub arrival: Duration,
}

/// A lowered scenario: the engine plus the per-process shapes.
pub struct LoweredScenario {
    /// The ready-to-run engine.
    pub engine: Engine,
    /// Per-process structure, in spec order.
    pub shapes: Vec<SimProcShape>,
    /// The demand scale factor applied (`machine.cores / spec.cores`, at least 1).
    pub scale: usize,
}

/// The simulator stack: runs any spec on a simulated machine under a pluggable
/// scheduling model.
#[derive(Debug, Clone)]
pub struct SimExecutor {
    /// The simulated machine (defaults drive paper-scale core counts).
    pub machine: Machine,
    /// The scheduling model (fair = OS baseline, coop = SCHED_COOP, partitioned = bl-*).
    pub model: SchedModel,
    /// Which selector of the spec's model matrix this executor realizes, when it was built
    /// through one (distinguishes bl-eq from bl-opt, which share `SchedModel::Partitioned`).
    pub sel: Option<ModelSel>,
    /// Scale factor applied to all durations (smaller = faster tests, same shape).
    pub time_scale: f64,
    /// Yield period of the busy-wait unit-join barriers.
    pub spin_slice: Duration,
}

impl SimExecutor {
    /// An executor over the given machine and model.
    pub fn new(machine: Machine, model: SchedModel) -> Self {
        let sel = match &model {
            SchedModel::Fair => Some(ModelSel::Fair),
            SchedModel::Coop { .. } => Some(ModelSel::Coop),
            SchedModel::Partitioned { .. } => None,
        };
        SimExecutor {
            machine,
            model,
            sel,
            time_scale: 1.0,
            spin_slice: Duration::from_micros(200),
        }
    }

    /// The preemptive-fair (Linux baseline) simulator over the paper's full node.
    pub fn os_baseline() -> Self {
        SimExecutor::new(Machine::marenostrum5(), SchedModel::Fair)
    }

    /// The SCHED_COOP simulator over the paper's full node.
    pub fn sched_coop() -> Self {
        SimExecutor::new(Machine::marenostrum5(), SchedModel::coop_default())
    }

    /// The bl-eq static-partitioning baseline over the paper's full node: the machine's
    /// cores are split *equally* among the spec's processes (in spec order, contiguously,
    /// so partitions respect socket boundaries where the split allows).
    pub fn partitioned_eq(spec: &ScenarioSpec) -> Self {
        SimExecutor::partitioned_eq_on(Machine::marenostrum5(), spec)
    }

    /// [`SimExecutor::partitioned_eq`] over an explicit machine (smoke/test scale).
    pub fn partitioned_eq_on(machine: Machine, spec: &ScenarioSpec) -> Self {
        SimExecutor::partitioned_on(machine, spec, ModelSel::BlEq)
    }

    /// The bl-opt static-partitioning baseline over the paper's full node: cores are split
    /// proportionally to each process's total nominal work (`units × unit_work`) — the
    /// demand-weighted "optimal" static split an oracle operator would pick.
    pub fn partitioned_opt(spec: &ScenarioSpec) -> Self {
        SimExecutor::partitioned_opt_on(Machine::marenostrum5(), spec)
    }

    /// [`SimExecutor::partitioned_opt`] over an explicit machine (smoke/test scale).
    pub fn partitioned_opt_on(machine: Machine, spec: &ScenarioSpec) -> Self {
        SimExecutor::partitioned_on(machine, spec, ModelSel::BlOpt)
    }

    fn partitioned_on(machine: Machine, spec: &ScenarioSpec, sel: ModelSel) -> Self {
        let assignments = partition_assignments(&machine, &spec.plan(), sel == ModelSel::BlOpt);
        let mut exec = SimExecutor::new(machine, SchedModel::Partitioned { assignments });
        exec.sel = Some(sel);
        exec
    }

    /// Resolve one [`ModelSel`] of a spec's model matrix into a concrete executor over the
    /// given machine.
    pub fn for_model(machine: Machine, sel: ModelSel, spec: &ScenarioSpec) -> Self {
        match sel {
            ModelSel::Fair => SimExecutor::new(machine, SchedModel::Fair),
            ModelSel::Coop => SimExecutor::new(machine, SchedModel::coop_default()),
            ModelSel::BlEq => SimExecutor::partitioned_eq_on(machine, spec),
            ModelSel::BlOpt => SimExecutor::partitioned_opt_on(machine, spec),
        }
    }

    /// Run the spec once per entry of its model matrix ([`ScenarioSpec::models`]),
    /// returning the reports in matrix order — "one spec sweeps Fair/Coop/bl-eq/bl-opt".
    pub fn sweep_models(machine: &Machine, spec: &ScenarioSpec) -> Vec<ScenarioReport> {
        spec.models
            .iter()
            .map(|&sel| SimExecutor::for_model(machine.clone(), sel, spec).run_spec(spec))
            .collect()
    }

    /// Override the time scale (builder style).
    pub fn time_scale(mut self, scale: f64) -> Self {
        self.time_scale = scale.max(1e-9);
        self
    }

    /// Lower a spec into an engine without running it — exposed so tests can inspect the
    /// spawned structure.
    pub fn lower(&self, spec: &ScenarioSpec) -> LoweredScenario {
        let plan = spec.plan();
        self.lower_plan(&plan)
    }

    fn lower_plan(&self, plan: &ScenarioPlan) -> LoweredScenario {
        let scale = (self.machine.cores() / plan.cores.max(1)).max(1);
        let mut engine = Engine::new(self.machine.clone(), &self.model);
        engine.set_max_sim_time(SimTime::from_secs(24 * 3600));
        // Lower the plan's placements into core masks over the machine's topology (the
        // shared `usf_nosv::Topology`) and install them as per-process restrictions. The
        // fair model enforces them (OS affinity is a hard limit), the Coop model turns
        // them into scheduler process domains; the partitioned models express placement
        // through their own assignments and ignore the masks.
        let masks = plan.placement_masks(&self.machine.topology);
        let mut shapes = Vec::with_capacity(plan.procs.len());
        for p in &plan.procs {
            let pid = engine.add_process(p.name.clone(), 1.0);
            if let Some(mask) = &masks[p.index] {
                engine.restrict_process(pid, mask.clone());
            }
            let threads = p.threads * scale;
            let weights = p.weights_for(threads);
            let gaps = p.pacing_gaps();
            let arrival = self.sim_time(p.arrival);
            // Uniform-weight kinds share one program across the region; only imbalanced
            // kinds (MD) need a distinct per-thread program.
            let uniform = weights.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12);
            let thread_ids = if uniform {
                let prog = self.thread_program(p, pid, 0, threads, &weights, &gaps);
                engine.add_threads_at(pid, prog, threads, arrival)
            } else {
                (0..threads)
                    .map(|t| {
                        let prog = self.thread_program(p, pid, t, threads, &weights, &gaps);
                        engine.add_thread_at(pid, prog, arrival)
                    })
                    .collect()
            };
            shapes.push(SimProcShape {
                name: p.name.clone(),
                process: pid,
                thread_ids,
                threads,
                units: p.units,
                arrival: p.arrival,
            });
        }
        LoweredScenario {
            engine,
            shapes,
            scale,
        }
    }

    /// Build thread `t`'s program for process `p`: per unit, the plan's pacing gap (an
    /// off-core sleep), the thread's weighted share of the unit work, the unit-join
    /// barrier (busy wait with yield — the patched BLAS/MPI join), and the plan's
    /// post-unit off-core sleep (the spin-sleep duty cycle).
    fn thread_program(
        &self,
        p: &ProcPlan,
        pid: ProcessId,
        t: usize,
        threads: usize,
        weights: &[f64],
        gaps: &[Duration],
    ) -> usf_simsched::ProgramRef {
        let barrier_base = (pid as u64 + 1) * 1_000_000;
        let share = weights.get(t).copied().unwrap_or(1.0 / threads as f64);
        let work = self.sim_time(p.unit_work.mul_f64(share));
        let slice = self.sim_time(self.spin_slice);
        // The HPC-pair kinds carry a memory-bandwidth appetite in the simulator (the
        // DeePMD contention of §5.6); service/synthetic kinds are compute-only.
        let bw = match p.kind {
            WorkloadKind::Md => 2.2 * self.machine.cores() as f64 / 112.0,
            _ => 0.0,
        };
        Program::new(format!("{}-t{t}", p.name))
            .extend_with(p.units, |prog, unit| {
                let mut prog = prog;
                if let Some(gap) = gaps.get(unit) {
                    prog = prog.sleep(self.sim_time(*gap));
                }
                prog = prog.compute_bw(work, bw);
                if threads > 1 {
                    prog = prog.barrier(
                        barrier_base + unit as u64,
                        threads,
                        BarrierWaitKind::SpinYield { slice },
                    );
                }
                if let Some(post) = p.post_unit_sleep() {
                    prog = prog.sleep(self.sim_time(post));
                }
                // Close the unit with a completion mark so the report carries *measured*
                // per-unit latencies (the unit is complete once its last thread gets here).
                prog.unit_mark(unit)
            })
            .build()
    }

    fn sim_time(&self, d: Duration) -> SimTime {
        SimTime::from_secs_f64(d.as_secs_f64() * self.time_scale)
    }

    /// Measured per-unit latencies of one process, in seconds: consecutive differences of
    /// the unit-completion timestamps the engine recorded via `UnitMark` ops (unit 0 is
    /// measured from the process's arrival). Falls back to the uniform per-unit share only
    /// if the run produced no marks — which scenario lowering always emits, so the
    /// fallback exists for robustness, not as a reporting path.
    fn unit_latencies(&self, s: &SimProcShape, report: &SimReport, makespan_s: f64) -> Vec<f64> {
        let completions = report.unit_completions_for(&s.thread_ids);
        if completions.len() != s.units {
            return vec![makespan_s / s.units.max(1) as f64; s.units];
        }
        let mut prev = self.sim_time(s.arrival);
        completions
            .into_iter()
            .map(|(_, at)| {
                let lat = at.saturating_sub(prev).as_secs_f64() / self.time_scale;
                prev = prev.max(at);
                lat
            })
            .collect()
    }

    /// Turn the simulator report into a scenario report.
    fn report_from(
        &self,
        plan: &ScenarioPlan,
        shapes: &[SimProcShape],
        report: &SimReport,
    ) -> ScenarioReport {
        assert!(
            !report.deadlocked,
            "scenario '{}' deadlocked under {}",
            plan.name,
            self.model.label()
        );
        let processes = shapes
            .iter()
            .map(|s| {
                let completion = report
                    .process_completion
                    .get(&s.process)
                    .copied()
                    .unwrap_or(report.makespan);
                let arrival = self.sim_time(s.arrival);
                let makespan_s = completion.saturating_sub(arrival).as_secs_f64() / self.time_scale;
                let makespan = Duration::from_secs_f64(makespan_s);
                let unit_latencies_s = self.unit_latencies(s, report, makespan_s);
                let (migrations, cross_socket) = report.migrations_for(&s.thread_ids);
                ProcessOutcome {
                    name: s.name.clone(),
                    arrival: s.arrival,
                    threads: s.threads,
                    makespan,
                    unit_latencies_s,
                    slowdown_vs_solo: None,
                    migrations: Some(migrations),
                    cross_socket_migrations: Some(cross_socket),
                    // The simulator runs the clean lowering; fault schedules are a
                    // real-stack concern.
                    injected_faults: 0,
                    panicked_units: Vec::new(),
                    survived: true,
                }
            })
            .collect();
        let m = &report.metrics;
        ScenarioReport {
            scenario: plan.name.clone(),
            executor: self.label(),
            model: self.sel,
            total_makespan: Duration::from_secs_f64(
                report.makespan.as_secs_f64() / self.time_scale,
            ),
            processes,
            sched: Some(SchedDelta {
                scheduler: self.model.label().to_string(),
                counters: vec![
                    ("context_switches".into(), m.context_switches as f64),
                    ("preemptions".into(), m.preemptions as f64),
                    ("migrations".into(), m.migrations as f64),
                    (
                        "cross_socket_migrations".into(),
                        m.cross_socket_migrations as f64,
                    ),
                    ("yields".into(), m.yields as f64),
                    ("busy_time_s".into(), m.busy_time.as_secs_f64()),
                    ("spin_time_s".into(), m.spin_time.as_secs_f64()),
                    ("idle_time_s".into(), m.idle_time.as_secs_f64()),
                    ("useful_fraction".into(), m.useful_fraction()),
                    (
                        "lock_holder_preemptions".into(),
                        m.lock_holder_preemptions as f64,
                    ),
                ],
            }),
            stages: None,
            samples: Vec::new(),
        }
    }
}

/// Derive the `(process, cores)` map of a static-partitioning baseline from a plan:
/// contiguous core ranges in process order, apportioned equally (`weighted = false`,
/// bl-eq) or proportionally to each process's total nominal work — `units × unit_work`,
/// already summed over the process's threads — (`weighted = true`, bl-opt), by largest
/// remainder with every process guaranteed at least one core. Processes beyond the core
/// count (a degenerate spec) are left unassigned and fall back to the scheduler's shared
/// queue.
fn partition_assignments(
    machine: &Machine,
    plan: &ScenarioPlan,
    weighted: bool,
) -> Vec<(ProcessId, Vec<usize>)> {
    let n = plan.procs.len().min(machine.cores());
    if n == 0 {
        return Vec::new();
    }
    let weights: Vec<f64> = plan.procs[..n]
        .iter()
        .map(|p| {
            if weighted {
                (p.units as f64 * p.unit_work.as_secs_f64()).max(1e-12)
            } else {
                1.0
            }
        })
        .collect();
    // Ideal share with a 1-core floor, then largest-remainder apportionment of the rest
    // (the same rule the placement lowering uses).
    let counts = crate::plan::apportion_counts(&weights, machine.cores());
    let mut next_core = 0;
    counts
        .iter()
        .enumerate()
        .map(|(pid, &count)| {
            let cores: Vec<usize> = (next_core..next_core + count).collect();
            next_core += count;
            (pid, cores)
        })
        .collect()
}

impl Executor for SimExecutor {
    fn label(&self) -> String {
        match self.sel {
            Some(sel) => format!("sim-{}", sel.label()),
            None => format!("sim-{}", self.model.label()),
        }
    }

    fn run_spec(&self, spec: &ScenarioSpec) -> ScenarioReport {
        let plan = spec.plan();
        let lowered = self.lower_plan(&plan);
        let report = lowered.engine.run();
        self.report_from(&plan, &lowered.shapes, &report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Arrival, ProblemSize, ProcSpec};

    fn small_sim(model: SchedModel) -> SimExecutor {
        SimExecutor::new(Machine::small_numa(8, 2), model)
    }

    fn ramp(procs: usize, threads: usize) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new("sim-ramp", 8);
        for i in 0..procs {
            spec = spec.process(
                ProcSpec::new(format!("p{i}"), WorkloadKind::Md)
                    .size(ProblemSize::Tiny)
                    .threads(threads)
                    .units(3)
                    .arrival(Arrival::Ramp {
                        stagger: Duration::from_micros(100),
                    }),
            );
        }
        spec
    }

    #[test]
    fn lowering_matches_the_plan_structure() {
        let spec = ramp(3, 4);
        let lowered = small_sim(SchedModel::Fair).lower(&spec);
        assert_eq!(lowered.scale, 1);
        assert_eq!(lowered.shapes.len(), 3);
        for (i, s) in lowered.shapes.iter().enumerate() {
            assert_eq!(s.threads, 4);
            assert_eq!(s.units, 3);
            assert_eq!(s.thread_ids.len(), 4);
            assert_eq!(s.arrival, Duration::from_micros(100) * i as u32);
        }
        assert_eq!(lowered.engine.thread_count(), 12);
    }

    #[test]
    fn demand_scales_to_machine_cores() {
        let spec = ScenarioSpec::new("scaled", 4).process(
            ProcSpec::new("p", WorkloadKind::SpinSleep)
                .threads(4)
                .units(1),
        );
        let exec = SimExecutor::new(Machine::small(16), SchedModel::Fair);
        let lowered = exec.lower(&spec);
        assert_eq!(lowered.scale, 4);
        assert_eq!(lowered.shapes[0].threads, 16);
    }

    #[test]
    fn same_spec_runs_under_fair_and_coop() {
        let spec = ramp(2, 8); // 2x oversubscription on 8 cores
        for model in [SchedModel::Fair, SchedModel::coop_default()] {
            let r = small_sim(model).run_spec(&spec);
            assert_eq!(r.processes.len(), 2);
            for p in &r.processes {
                assert!(p.makespan > Duration::ZERO);
                assert_eq!(p.unit_latencies_s.len(), 3);
            }
            let sched = r.sched.as_ref().unwrap();
            assert!(sched.get("busy_time_s").unwrap() > 0.0);
        }
    }

    #[test]
    fn coop_does_not_preempt() {
        // Units must outlast the 4 ms preemption quantum for the fair policy to preempt.
        let mut spec = ScenarioSpec::new("preempt", 8);
        for i in 0..2 {
            spec = spec.process(
                ProcSpec::new(format!("p{i}"), WorkloadKind::Md)
                    .size(ProblemSize::Custom {
                        unit_work_us: 200_000,
                    })
                    .threads(8)
                    .units(2),
            );
        }
        let r = small_sim(SchedModel::coop_default()).run_spec(&spec);
        assert_eq!(r.sched.unwrap().get("preemptions"), Some(0.0));
        let r = small_sim(SchedModel::Fair).run_spec(&spec);
        assert!(r.sched.unwrap().get("preemptions").unwrap() > 0.0);
    }

    #[test]
    fn spin_sleep_lowering_includes_the_off_core_duty_cycle() {
        // The real spin-sleep workload sleeps unit_work/4 off-core after each unit; the
        // lowering must model the same duty cycle or the stacks diverge.
        let units = 4;
        let spec = ScenarioSpec::new("duty", 8).process(
            ProcSpec::new("ss", WorkloadKind::SpinSleep)
                .size(ProblemSize::Tiny)
                .threads(4)
                .units(units),
        );
        let r = small_sim(SchedModel::Fair).run_spec(&spec);
        let post = ProblemSize::Tiny.unit_work() / 4;
        assert!(
            r.processes[0].makespan >= post * units as u32,
            "makespan {:?} must cover {units} post-unit sleeps of {post:?}",
            r.processes[0].makespan
        );
    }

    #[test]
    fn unit_latencies_are_measured_not_fabricated() {
        // Two ramped MD co-runners: process 0's early units run with less interference
        // than its late ones, so its measured per-unit latencies must NOT be uniform (the
        // old placeholder divided the makespan evenly).
        let spec = ramp(2, 8);
        let r = small_sim(SchedModel::Fair).run_spec(&spec);
        let p0 = &r.processes[0];
        assert_eq!(p0.unit_latencies_s.len(), 3);
        let total: f64 = p0.unit_latencies_s.iter().sum();
        assert!(
            (total - p0.makespan.as_secs_f64()).abs() <= 1e-6 + p0.makespan.as_secs_f64() * 1e-3,
            "unit latencies ({total}) must telescope to the makespan ({})",
            p0.makespan.as_secs_f64()
        );
        let min = p0
            .unit_latencies_s
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = p0.unit_latencies_s.iter().copied().fold(0.0, f64::max);
        assert!(
            max > min * 1.01,
            "ramped co-run latencies must be non-uniform: {:?}",
            p0.unit_latencies_s
        );
    }

    #[test]
    fn partitioned_constructors_cover_the_machine() {
        let spec = ramp(3, 4);
        let eq = small_sim(SchedModel::Fair); // for the machine shape only
        let exec = SimExecutor::partitioned_eq_on(eq.machine.clone(), &spec);
        assert_eq!(exec.label(), "sim-bl-eq");
        let SchedModel::Partitioned { assignments } = &exec.model else {
            panic!("bl-eq must build a partitioned model");
        };
        assert_eq!(assignments.len(), 3);
        let mut all_cores: Vec<usize> = assignments.iter().flat_map(|(_, c)| c.clone()).collect();
        all_cores.sort_unstable();
        assert_eq!(
            all_cores,
            (0..8).collect::<Vec<_>>(),
            "cores partition the machine"
        );
        // Equal split of 8 cores over 3 processes: 3/3/2 in some order.
        let mut sizes: Vec<usize> = assignments.iter().map(|(_, c)| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3, 3]);

        // bl-opt weights by units × unit_work: give one process 3× the work.
        let heavy = ScenarioSpec::new("opt", 8)
            .process(
                ProcSpec::new("heavy", WorkloadKind::SpinSleep)
                    .size(ProblemSize::Custom {
                        unit_work_us: 3_000,
                    })
                    .threads(4)
                    .units(4),
            )
            .process(
                ProcSpec::new("light", WorkloadKind::SpinSleep)
                    .size(ProblemSize::Custom {
                        unit_work_us: 1_000,
                    })
                    .threads(4)
                    .units(4),
            );
        let exec = SimExecutor::partitioned_opt_on(exec.machine.clone(), &heavy);
        assert_eq!(exec.label(), "sim-bl-opt");
        let SchedModel::Partitioned { assignments } = &exec.model else {
            panic!("bl-opt must build a partitioned model");
        };
        let sizes: Vec<usize> = assignments.iter().map(|(_, c)| c.len()).collect();
        assert_eq!(
            sizes,
            vec![6, 2],
            "demand-weighted split favours the heavy process"
        );
    }

    #[test]
    fn model_matrix_sweeps_one_spec_across_all_models() {
        let spec = ramp(2, 8).models(crate::spec::ModelSel::ALL.to_vec());
        let m = Machine::small_numa(8, 2);
        let reports = SimExecutor::sweep_models(&m, &spec);
        assert_eq!(reports.len(), 4);
        let labels: Vec<&str> = reports.iter().map(|r| r.model.unwrap().label()).collect();
        assert_eq!(labels, vec!["linux-fair", "sched_coop", "bl-eq", "bl-opt"]);
        for r in &reports {
            assert_eq!(r.processes.len(), 2, "{}", r.executor);
            for p in &r.processes {
                assert_eq!(p.unit_latencies_s.len(), 3);
                assert!(p.makespan > Duration::ZERO);
            }
        }
    }

    #[test]
    fn solo_baselines_give_near_one_slowdown_when_alone() {
        let spec = ScenarioSpec::new("solo-ish", 8).process(
            ProcSpec::new("only", WorkloadKind::SpinSleep)
                .size(ProblemSize::Tiny)
                .threads(4)
                .units(2),
        );
        let r = small_sim(SchedModel::Fair).run_with_solo_baselines(&spec);
        let s = r.processes[0].slowdown_vs_solo.unwrap();
        assert!(
            (s - 1.0).abs() < 0.05,
            "solo vs itself must be ~1.0, got {s}"
        );
    }
}
