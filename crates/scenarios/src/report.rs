//! Scenario reports: per-process makespans, unit latencies, slowdowns and fairness.

use crate::spec::ModelSel;
use std::time::Duration;
use usf_workloads::stats::{self, Summary};

/// Outcome of one process of a scenario run.
#[derive(Debug, Clone)]
pub struct ProcessOutcome {
    /// Process name (from the spec).
    pub name: String,
    /// Planned arrival time relative to scenario start.
    pub arrival: Duration,
    /// Parallel-region width the process ran with.
    pub threads: usize,
    /// Time from the process's arrival to its last unit completing.
    pub makespan: Duration,
    /// Per-unit wall-clock latencies in seconds (includes each unit's arrival gap for
    /// open-loop kinds). All three stacks report *measured* values: the real executors
    /// time each unit on the driver thread, the simulator differentiates the per-unit
    /// completion timestamps its `UnitMark` instrumentation records.
    pub unit_latencies_s: Vec<f64>,
    /// `corun_makespan / solo_makespan`, filled in by
    /// [`ScenarioReport::apply_solo_baseline`]; `None` until a solo baseline is known.
    pub slowdown_vs_solo: Option<f64>,
    /// Total core migrations of the process's threads over the run — `None` on stacks
    /// that cannot observe placement (the real executors), measured on the simulator.
    pub migrations: Option<u64>,
    /// The subset of migrations that crossed a socket (NUMA-node) boundary. The §5.6
    /// placement assertions read this *measured* counter rather than inferring from
    /// latency.
    pub cross_socket_migrations: Option<u64>,
    /// Driver-level faults injected into this process (unit panics, process death) — `0`
    /// on a clean run. Ground truth for the chaos invariants, counted by the driver's own
    /// [`usf_nosv::FaultState`], independent of what the scheduler observed.
    pub injected_faults: u64,
    /// Unit indices whose body panicked (injected or genuine). The units are *lost*, not
    /// retried; the process continues past them — that is the degradation contract.
    pub panicked_units: Vec<usize>,
    /// `false` when the process was killed mid-run (its remaining units died with it).
    /// Co-tenant processes of a killed one must still report `true` and full unit counts.
    pub survived: bool,
}

impl ProcessOutcome {
    /// Percentile bundle of the unit latencies.
    pub fn unit_summary(&self) -> Summary {
        Summary::of(&self.unit_latencies_s)
    }
}

/// A named counter delta of the scheduler that ran the scenario (USF scheduler metrics or
/// simulator metrics — the counters differ per stack, so they are reported as pairs).
#[derive(Debug, Clone, Default)]
pub struct SchedDelta {
    /// Which scheduler the counters describe.
    pub scheduler: String,
    /// `(counter name, value)` pairs, in display order.
    pub counters: Vec<(String, f64)>,
}

impl SchedDelta {
    /// Value of a counter by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Result of running one [`crate::ScenarioSpec`] on one executor.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Executor label (`baseline-os`, `sched_coop`, `sim-fair`, `sim-coop`, …).
    pub executor: String,
    /// Time from scenario start to the last process finishing.
    pub total_makespan: Duration,
    /// Per-process outcomes, in spec order.
    pub processes: Vec<ProcessOutcome>,
    /// Scheduler metrics delta over the run, when the stack exposes one.
    pub sched: Option<SchedDelta>,
    /// Per-stage latency histograms (submit→drain, enqueue→grant, grant→first-run,
    /// pause/yield off-core) as a delta over the run — USF executor only; `None` on
    /// stacks without the observability plane.
    pub stages: Option<usf_nosv::StageSnapshot>,
    /// Background stats-sampler series when the run opted into one (see
    /// [`crate::UsfExecutor::sample_period`]); empty otherwise.
    pub samples: Vec<usf_nosv::StatsSample>,
    /// Which [`ModelSel`] of the spec's model matrix produced this report (`None` for the
    /// real stacks, whose scheduling model is fixed by the executor).
    pub model: Option<ModelSel>,
}

impl ScenarioReport {
    /// Fill in each process's `slowdown_vs_solo` from a slice of solo makespans in spec
    /// order (entries may be `None` when a solo run is unavailable). Degenerate baselines
    /// — zero/near-zero solo or co-run makespans (empty process, zero units), which would
    /// turn the ratio into `inf`/`NaN` or a meaningless 0 — leave the entry `None` rather
    /// than poisoning the fairness and slowdown aggregates.
    pub fn apply_solo_baseline(&mut self, solo_makespans: &[Option<Duration>]) {
        for (p, solo) in self.processes.iter_mut().zip(solo_makespans) {
            p.slowdown_vs_solo = solo.and_then(|s| {
                let (solo_s, corun_s) = (s.as_secs_f64(), p.makespan.as_secs_f64());
                let ratio = stats::slowdown(solo_s, corun_s);
                (solo_s > 0.0 && corun_s > 0.0 && ratio.is_finite()).then_some(ratio)
            });
        }
    }

    /// Jain fairness index of the co-run. When solo baselines are known, fairness is
    /// computed over normalized progress (`1 / slowdown`, the standard definition — how
    /// evenly the interference is spread); otherwise over raw per-process unit throughput.
    /// Processes with a zero/near-zero makespan contribute zero progress (instead of an
    /// unbounded throughput), so the index stays finite and within `[0, 1]`.
    pub fn jain_fairness(&self) -> f64 {
        let norm: Vec<f64> = if self.processes.iter().all(|p| p.slowdown_vs_solo.is_some()) {
            self.processes
                .iter()
                .map(|p| {
                    let s = p.slowdown_vs_solo.unwrap_or(0.0);
                    if s > 0.0 && s.is_finite() {
                        1.0 / s
                    } else {
                        0.0
                    }
                })
                .collect()
        } else {
            self.processes
                .iter()
                .map(|p| {
                    let secs = p.makespan.as_secs_f64();
                    if secs > 1e-12 {
                        p.unit_latencies_s.len() as f64 / secs
                    } else {
                        0.0
                    }
                })
                .collect()
        };
        stats::jain_fairness(&norm)
    }

    /// Sum of the per-process *measured* cross-socket migration counters; `None` when any
    /// process lacks one (the real stacks cannot observe placement).
    pub fn total_cross_socket_migrations(&self) -> Option<u64> {
        self.processes
            .iter()
            .map(|p| p.cross_socket_migrations)
            .try_fold(0u64, |acc, x| x.map(|v| acc + v))
    }

    /// Largest finite per-process slowdown (`None` until baselines are applied).
    pub fn worst_slowdown(&self) -> Option<f64> {
        self.processes
            .iter()
            .filter_map(|p| p.slowdown_vs_solo)
            .filter(|s| s.is_finite())
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }

    /// Geometric-mean slowdown across processes with a finite baseline (`None` until
    /// baselines are applied).
    pub fn mean_slowdown(&self) -> Option<f64> {
        let v: Vec<f64> = self
            .processes
            .iter()
            .filter_map(|p| p.slowdown_vs_solo)
            .filter(|s| s.is_finite())
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(stats::geomean(&v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str, makespan_ms: u64, units: usize) -> ProcessOutcome {
        ProcessOutcome {
            name: name.into(),
            arrival: Duration::ZERO,
            threads: 2,
            makespan: Duration::from_millis(makespan_ms),
            unit_latencies_s: vec![makespan_ms as f64 / 1e3 / units as f64; units],
            slowdown_vs_solo: None,
            migrations: None,
            cross_socket_migrations: None,
            injected_faults: 0,
            panicked_units: Vec::new(),
            survived: true,
        }
    }

    fn report() -> ScenarioReport {
        ScenarioReport {
            scenario: "t".into(),
            executor: "x".into(),
            total_makespan: Duration::from_millis(40),
            processes: vec![outcome("a", 20, 4), outcome("b", 40, 4)],
            sched: None,
            stages: None,
            samples: Vec::new(),
            model: None,
        }
    }

    #[test]
    fn solo_baseline_fills_slowdowns() {
        let mut r = report();
        r.apply_solo_baseline(&[
            Some(Duration::from_millis(10)),
            Some(Duration::from_millis(40)),
        ]);
        assert_eq!(r.processes[0].slowdown_vs_solo, Some(2.0));
        assert_eq!(r.processes[1].slowdown_vs_solo, Some(1.0));
        assert_eq!(r.worst_slowdown(), Some(2.0));
        let gm = r.mean_slowdown().unwrap();
        assert!((gm - 2.0f64.sqrt()).abs() < 1e-9);
        // Fairness over 1/slowdown of (2, 1): (0.5+1)²/(2·(0.25+1)) = 0.9.
        assert!((r.jain_fairness() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn fairness_without_baseline_uses_throughput() {
        let r = report();
        // Throughputs 200/s and 100/s → Jain = (300²)/(2·(200²+100²)) = 0.9.
        assert!((r.jain_fairness() - 0.9).abs() < 1e-9);
        assert_eq!(r.worst_slowdown(), None);
        assert_eq!(r.mean_slowdown(), None);
    }

    #[test]
    fn partial_baseline_leaves_missing_entries_none() {
        let mut r = report();
        r.apply_solo_baseline(&[Some(Duration::from_millis(10)), None]);
        assert_eq!(r.processes[0].slowdown_vs_solo, Some(2.0));
        assert_eq!(r.processes[1].slowdown_vs_solo, None);
        assert_eq!(r.worst_slowdown(), Some(2.0));
    }

    #[test]
    fn zero_makespan_processes_keep_reports_finite() {
        // An empty process (zero units, zero makespan) next to a normal one: every
        // aggregate must stay finite and slowdowns vs a zero solo must stay None.
        let mut r = report();
        r.processes.push(ProcessOutcome {
            name: "empty".into(),
            arrival: Duration::ZERO,
            threads: 1,
            makespan: Duration::ZERO,
            unit_latencies_s: Vec::new(),
            slowdown_vs_solo: None,
            migrations: None,
            cross_socket_migrations: None,
            injected_faults: 0,
            panicked_units: Vec::new(),
            survived: true,
        });
        let jain = r.jain_fairness();
        assert!(jain.is_finite() && (0.0..=1.0).contains(&jain), "{jain}");

        r.apply_solo_baseline(&[
            Some(Duration::from_millis(10)),
            Some(Duration::ZERO), // degenerate solo: stays None, not inf/0
            Some(Duration::from_millis(1)), // degenerate corun (zero makespan): stays None
        ]);
        assert_eq!(r.processes[0].slowdown_vs_solo, Some(2.0));
        assert_eq!(r.processes[1].slowdown_vs_solo, None);
        assert_eq!(r.processes[2].slowdown_vs_solo, None);
        assert_eq!(r.worst_slowdown(), Some(2.0));
        assert!(r.mean_slowdown().unwrap().is_finite());
        let jain = r.jain_fairness();
        assert!(jain.is_finite() && (0.0..=1.0).contains(&jain), "{jain}");

        // The fully-degenerate report: no processes at all.
        let empty = ScenarioReport {
            scenario: "none".into(),
            executor: "x".into(),
            total_makespan: Duration::ZERO,
            processes: Vec::new(),
            sched: None,
            stages: None,
            samples: Vec::new(),
            model: None,
        };
        assert!(empty.jain_fairness().is_finite());
        assert_eq!(empty.mean_slowdown(), None);
        assert_eq!(empty.worst_slowdown(), None);
    }

    #[test]
    fn unit_summary_and_sched_delta() {
        let r = report();
        let s = r.processes[0].unit_summary();
        assert_eq!(s.count, 4);
        assert!((s.p50 - 0.005).abs() < 1e-12);
        let d = SchedDelta {
            scheduler: "sched_coop".into(),
            counters: vec![("grants".into(), 7.0)],
        };
        assert_eq!(d.get("grants"), Some(7.0));
        assert_eq!(d.get("missing"), None);
    }
}
