//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] describes a co-run experiment as *data*: N processes, each with a
//! workload kind, a problem size, a runtime flavour, a thread demand and an arrival phase.
//! The same spec runs unmodified on all three execution stacks (OS baseline, USF/SCHED_COOP,
//! discrete-event simulator) via the [`crate::Executor`] implementations — solo runs, HPC
//! pairs, latency-vs-batch co-location and 1×–8× oversubscription sweeps stop being
//! hand-wired binaries and become entries of the canned [`library`](crate::library).

use std::time::Duration;
pub use usf_nosv::{FaultPlan, FaultSite, FaultSpec};
pub use usf_workloads::workload::RuntimeFlavor;

/// The kind of work one process of a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Nested tiled matmul (§5.3): outer task graph, inner BLAS regions.
    Matmul,
    /// Blocked Cholesky factorization (§5.4).
    Cholesky,
    /// Latency-sensitive inference service: Poisson-arriving requests, each a parallel
    /// region (§5.5 shape).
    Microservices,
    /// MD ensemble member: imbalanced fork-join steps synchronized per step (§5.6 shape).
    Md,
    /// Open-loop bursty batch job: sparse Poisson-paced parallel bursts.
    PoissonBurst,
    /// Synthetic spin-then-sleep co-runner (the simplest interference generator).
    SpinSleep,
}

impl WorkloadKind {
    /// All kinds.
    pub const ALL: [WorkloadKind; 6] = [
        WorkloadKind::Matmul,
        WorkloadKind::Cholesky,
        WorkloadKind::Microservices,
        WorkloadKind::Md,
        WorkloadKind::PoissonBurst,
        WorkloadKind::SpinSleep,
    ];

    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::Matmul => "matmul",
            WorkloadKind::Cholesky => "cholesky",
            WorkloadKind::Microservices => "microservices",
            WorkloadKind::Md => "md",
            WorkloadKind::PoissonBurst => "poisson-burst",
            WorkloadKind::SpinSleep => "spin-sleep",
        }
    }
}

/// Problem size of one process — scales both the real workloads and the simulator's
/// nominal per-unit cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemSize {
    /// Sub-millisecond units: CI smoke tests and property tests.
    Tiny,
    /// Millisecond units: laptop-scale demonstrations (default).
    Small,
    /// Tens-of-millisecond units: the `--full` sweeps.
    Medium,
    /// Explicit nominal per-unit work in microseconds (summed over the process threads).
    Custom {
        /// Nominal on-core work per unit, in microseconds.
        unit_work_us: u64,
    },
}

impl ProblemSize {
    /// Nominal on-core work of one unit, summed across the process's threads. This is the
    /// cost model shared by the synthetic real workloads and the simulator lowering.
    pub fn unit_work(&self) -> Duration {
        match self {
            ProblemSize::Tiny => Duration::from_micros(300),
            ProblemSize::Small => Duration::from_millis(3),
            ProblemSize::Medium => Duration::from_millis(20),
            ProblemSize::Custom { unit_work_us } => Duration::from_micros(*unit_work_us),
        }
    }

    /// `(matrix_size, tile_size)` of the real matmul/Cholesky workload at this size.
    pub fn matrix_dims(&self) -> (usize, usize) {
        match self {
            ProblemSize::Tiny => (64, 32),
            ProblemSize::Small => (128, 32),
            ProblemSize::Medium => (192, 32),
            // Pick the largest power-of-two-ish size whose unit cost is in the same
            // ballpark as the requested work; custom sizes are primarily for synthetics.
            ProblemSize::Custom { unit_work_us } => {
                if *unit_work_us < 1_000 {
                    (64, 32)
                } else if *unit_work_us < 10_000 {
                    (128, 32)
                } else {
                    (192, 32)
                }
            }
        }
    }
}

/// Which simulator scheduling model a scenario runs under — the full comparison matrix of
/// the paper's figures: the preemptive Linux baseline, SCHED_COOP, and the two static
/// core-partitioning baselines (equal split vs demand-weighted split).
///
/// A [`ScenarioSpec`] carries the list of models it should be swept over
/// ([`ScenarioSpec::models`]); [`crate::SimExecutor::sweep_models`] resolves each selector
/// into a concrete executor so *one spec* produces the whole Fair/Coop/bl-eq/bl-opt
/// comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSel {
    /// Preemptive weighted-fair scheduling (the Linux baseline).
    Fair,
    /// The paper's SCHED_COOP cooperative policy (default quantum).
    Coop,
    /// Static partitioning, cores split *equally* among the spec's processes (bl-eq).
    BlEq,
    /// Static partitioning, cores split proportionally to each process's total nominal
    /// work — `units × unit_work` (bl-opt).
    BlOpt,
}

impl ModelSel {
    /// The full model matrix, in display order.
    pub const ALL: [ModelSel; 4] = [
        ModelSel::Fair,
        ModelSel::Coop,
        ModelSel::BlEq,
        ModelSel::BlOpt,
    ];

    /// Label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ModelSel::Fair => "linux-fair",
            ModelSel::Coop => "sched_coop",
            ModelSel::BlEq => "bl-eq",
            ModelSel::BlOpt => "bl-opt",
        }
    }
}

/// Where a process of a scenario is placed on the NUMA topology — the §5.6
/// socket-placement variants as data.
///
/// Placement lowers deterministically in the plan
/// ([`crate::ScenarioPlan::placement_masks`]) into per-process core masks over the
/// execution stack's [`usf_nosv::Topology`]. The stacks apply the mask according to their
/// nature: the simulator's fair model *enforces* it (Linux affinity is a hard limit), the
/// simulator's SCHED_COOP model and the real `UsfExecutor` install it as a per-process
/// scheduler domain (plus the recorded-but-unapplied affinity hint of §4.3.2), and the
/// real `OsExecutor` only records the hint — this reproduction cannot pin OS threads, by
/// design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// No restriction: the scheduler's affinity → same-node → anywhere rule decides
    /// (the default).
    Anywhere,
    /// Pin to one NUMA node (modulo the node count). Several processes may name the same
    /// node — that is the deliberate "both on socket 0" contention variant.
    Node(usize),
    /// The `Spread` processes of the spec are distributed across NUMA nodes round-robin
    /// (maximum inter-process distance); processes landing on the same node split its
    /// cores disjointly, weighted by thread demand.
    Spread,
    /// The `Packed` processes of the spec split the cores contiguously from core 0
    /// upward, weighted by thread demand — the fewest-sockets co-location variant.
    Packed,
}

impl Placement {
    /// Label used in reports and JSON.
    pub fn label(&self) -> String {
        match self {
            Placement::Anywhere => "anywhere".to_string(),
            Placement::Node(n) => format!("node{n}"),
            Placement::Spread => "spread".to_string(),
            Placement::Packed => "packed".to_string(),
        }
    }
}

/// When a process of a scenario starts relative to scenario start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// At scenario start.
    Immediate,
    /// After a fixed delay.
    Delayed(Duration),
    /// After an exponentially distributed delay with the given mean rate (deterministic
    /// per seed): open-loop job arrivals.
    Poisson {
        /// Mean arrival rate in processes per second.
        rate_per_sec: f64,
        /// Seed of the exponential draw.
        seed: u64,
    },
    /// Staggered by position: process `i` of the spec arrives at `i × stagger` — the
    /// oversubscription *ramp*.
    Ramp {
        /// Per-position stagger.
        stagger: Duration,
    },
}

/// One process of a scenario.
#[derive(Debug, Clone)]
pub struct ProcSpec {
    /// Display name (unique within the spec by convention).
    pub name: String,
    /// What the process runs.
    pub kind: WorkloadKind,
    /// How big each unit of work is.
    pub size: ProblemSize,
    /// Which runtime parallelizes the units.
    pub flavor: RuntimeFlavor,
    /// Thread/core demand of the process (width of its parallel regions).
    pub threads: usize,
    /// Units of work (products, factorizations, requests, steps) the process runs.
    pub units: usize,
    /// Arrival phase.
    pub arrival: Arrival,
    /// NUMA placement of the process (§5.6 socket-placement variants).
    pub placement: Placement,
}

impl ProcSpec {
    /// A process with the given name and kind; size Small, fork-join flavour, 2 threads,
    /// 4 units, immediate arrival. Override with the builder methods.
    pub fn new(name: impl Into<String>, kind: WorkloadKind) -> Self {
        ProcSpec {
            name: name.into(),
            kind,
            size: ProblemSize::Small,
            flavor: RuntimeFlavor::ForkJoin,
            threads: 2,
            units: 4,
            arrival: Arrival::Immediate,
            placement: Placement::Anywhere,
        }
    }

    /// Set the problem size.
    pub fn size(mut self, size: ProblemSize) -> Self {
        self.size = size;
        self
    }

    /// Set the runtime flavour.
    pub fn flavor(mut self, flavor: RuntimeFlavor) -> Self {
        self.flavor = flavor;
        self
    }

    /// Set the thread/core demand.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the unit count.
    pub fn units(mut self, units: usize) -> Self {
        self.units = units.max(1);
        self
    }

    /// Set the arrival phase.
    pub fn arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// Set the NUMA placement.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }
}

/// A seeded scenario-level fault schedule — plain data, compiled unconditionally (like
/// the [`usf_nosv::faults`] types it builds on).
///
/// Two layers of faults lower out of one spec:
///
/// * **Driver-level** faults are injected by the scenario driver itself and therefore
///   work on *every* stack without any cargo feature: unit-body panics
///   ([`FaultSite::TaskBodyPanic`], caught per unit — the process degrades, it does not
///   hang) and mid-run process death ([`FaultSite::ProcessDeath`] — on the USF stack the
///   victim's domain is forcibly reclaimed via
///   [`ProcessHandle::kill`](usf_core::runtime::ProcessHandle::kill); on stacks without a
///   shared scheduler the victim simply stops). Decisions are deterministic per
///   `(seed, process index, unit)`.
/// * **Scheduler-level** sites ([`FaultPlanSpec::sched_sites`]: dropped/duplicated
///   wakeups, delayed intake drains, worker stalls, …) are installed into the real USF
///   scheduler when the stack is built with the `fault-inject` feature, and ignored by
///   stacks that cannot inject (the OS baseline, the simulator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanSpec {
    /// Seed of every deterministic fire decision.
    pub seed: u64,
    /// Panic roughly one unit in `n` per process (`0` disarms unit panics).
    pub panic_one_in: u32,
    /// Cap on injected unit panics, per process.
    pub max_panics: u32,
    /// Kill this process (by spec index) mid-run.
    pub kill_proc: Option<usize>,
    /// Units the victim completes before dying.
    pub kill_after_units: usize,
    /// Scheduler-level sites to arm (fault-inject stacks only).
    pub sched_sites: Vec<FaultSpec>,
}

impl FaultPlanSpec {
    /// An empty schedule (nothing armed) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlanSpec {
            seed,
            panic_one_in: 0,
            max_panics: u32::MAX,
            kill_proc: None,
            kill_after_units: 0,
            sched_sites: Vec::new(),
        }
    }

    /// Arm unit-body panics: roughly one unit in `one_in` panics, at most `max` per
    /// process.
    pub fn panics(mut self, one_in: u32, max: u32) -> Self {
        self.panic_one_in = one_in.max(1);
        self.max_panics = max;
        self
    }

    /// Kill process `proc_index` after it completes `after_units` units.
    pub fn kill(mut self, proc_index: usize, after_units: usize) -> Self {
        self.kill_proc = Some(proc_index);
        self.kill_after_units = after_units;
        self
    }

    /// Arm one scheduler-level site (builder style).
    pub fn sched_site(mut self, spec: FaultSpec) -> Self {
        self.sched_sites.push(spec);
        self
    }

    /// Whether anything at all is armed.
    pub fn is_empty(&self) -> bool {
        self.panic_one_in == 0 && self.kill_proc.is_none() && self.sched_sites.is_empty()
    }

    /// The driver-level [`FaultPlan`] of process `index`. Each process decides from its
    /// own seed (mixed from the schedule seed and the index), so per-process decision
    /// sequences are deterministic regardless of how the driver threads interleave.
    pub fn driver_plan(&self, index: usize) -> FaultPlan {
        let seed = self
            .seed
            .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut plan = FaultPlan::new(seed);
        if self.panic_one_in > 0 {
            plan = plan.arm(
                FaultSpec::new(FaultSite::TaskBodyPanic)
                    .one_in(self.panic_one_in)
                    .max_fires(self.max_panics),
            );
        }
        if self.kill_proc == Some(index) {
            plan = plan.arm(
                FaultSpec::new(FaultSite::ProcessDeath)
                    .one_in(1)
                    .max_fires(1),
            );
        }
        plan
    }

    /// The scheduler-level [`FaultPlan`] (the armed [`FaultPlanSpec::sched_sites`] under
    /// the schedule seed); empty when no site is armed.
    pub fn sched_plan(&self) -> FaultPlan {
        self.sched_sites
            .iter()
            .fold(FaultPlan::new(self.seed), |p, s| p.arm(*s))
    }
}

/// A complete co-run scenario: a named set of processes over a core budget.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports and JSON).
    pub name: String,
    /// Virtual cores of the execution stack the thread demands are sized against. The
    /// real executors build their scheduler with exactly this many cores; the simulator
    /// scales demands up to its machine's core count.
    pub cores: usize,
    /// The co-running processes.
    pub procs: Vec<ProcSpec>,
    /// The simulator scheduling models this scenario should be swept over (defaults to
    /// Fair + Coop, the fig6 comparison; set [`ModelSel::ALL`] for the full matrix).
    pub models: Vec<ModelSel>,
    /// Optional seeded fault schedule (`None` = a clean run). See [`FaultPlanSpec`] for
    /// which parts apply on which stack.
    pub faults: Option<FaultPlanSpec>,
}

impl ScenarioSpec {
    /// An empty scenario over `cores` virtual cores.
    pub fn new(name: impl Into<String>, cores: usize) -> Self {
        ScenarioSpec {
            name: name.into(),
            cores: cores.max(1),
            procs: Vec::new(),
            models: vec![ModelSel::Fair, ModelSel::Coop],
            faults: None,
        }
    }

    /// Add a process.
    pub fn process(mut self, proc_spec: ProcSpec) -> Self {
        self.procs.push(proc_spec);
        self
    }

    /// Set the simulator model matrix the spec sweeps (builder style).
    pub fn models(mut self, models: impl Into<Vec<ModelSel>>) -> Self {
        self.models = models.into();
        self
    }

    /// Attach a seeded fault schedule (builder style).
    pub fn with_faults(mut self, faults: FaultPlanSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The same spec with process `i` placed according to `placements[i %
    /// placements.len()]` — how one canned scenario derives its §5.6 socket-placement
    /// variants (e.g. `&[Node(0), Node(1)]` pins an HPC pair to opposite sockets). An
    /// empty slice leaves the spec unchanged.
    pub fn with_placements(mut self, placements: &[Placement]) -> ScenarioSpec {
        if placements.is_empty() {
            return self;
        }
        for (i, p) in self.procs.iter_mut().enumerate() {
            p.placement = placements[i % placements.len()];
        }
        self
    }

    /// Total thread demand over the core budget: `1.0` = fully subscribed, `2.0` = 2×
    /// oversubscribed.
    pub fn oversubscription(&self) -> f64 {
        let demand: usize = self.procs.iter().map(|p| p.threads).sum();
        demand as f64 / self.cores as f64
    }

    /// The solo spec of process `index`: the same process alone on the same cores with
    /// immediate arrival — the baseline of every slowdown figure. Fault schedules do NOT
    /// propagate: a chaotic co-run is measured against the *clean* solo baseline.
    pub fn solo_of(&self, index: usize) -> ScenarioSpec {
        let mut p = self.procs[index].clone();
        p.arrival = Arrival::Immediate;
        ScenarioSpec {
            name: format!("{}-solo-{}", self.name, p.name),
            cores: self.cores,
            procs: vec![p],
            models: self.models.clone(),
            faults: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let p = ProcSpec::new("svc", WorkloadKind::Microservices)
            .threads(0)
            .units(0)
            .size(ProblemSize::Tiny)
            .flavor(RuntimeFlavor::ThreadPool)
            .arrival(Arrival::Delayed(Duration::from_millis(5)));
        assert_eq!(p.threads, 1, "thread demand is clamped to >= 1");
        assert_eq!(p.units, 1, "unit count is clamped to >= 1");
        assert_eq!(p.size.unit_work(), Duration::from_micros(300));
        assert_eq!(p.flavor.label(), "threadpool");
    }

    #[test]
    fn oversubscription_is_demand_over_cores() {
        let spec = ScenarioSpec::new("s", 4)
            .process(ProcSpec::new("a", WorkloadKind::SpinSleep).threads(4))
            .process(ProcSpec::new("b", WorkloadKind::SpinSleep).threads(4));
        assert_eq!(spec.oversubscription(), 2.0);
    }

    #[test]
    fn solo_of_isolates_one_process() {
        let spec = ScenarioSpec::new("pair", 2)
            .process(ProcSpec::new("a", WorkloadKind::Matmul))
            .process(ProcSpec::new("b", WorkloadKind::Md).arrival(Arrival::Ramp {
                stagger: Duration::from_millis(1),
            }));
        let solo = spec.solo_of(1);
        assert_eq!(solo.procs.len(), 1);
        assert_eq!(solo.procs[0].name, "b");
        assert_eq!(solo.procs[0].arrival, Arrival::Immediate);
        assert_eq!(solo.cores, 2);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            WorkloadKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), WorkloadKind::ALL.len());
        let models: std::collections::HashSet<_> =
            ModelSel::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(models.len(), ModelSel::ALL.len());
    }

    #[test]
    fn model_matrix_defaults_and_propagates_to_solo() {
        let spec = ScenarioSpec::new("m", 2).process(ProcSpec::new("a", WorkloadKind::SpinSleep));
        assert_eq!(spec.models, vec![ModelSel::Fair, ModelSel::Coop]);
        let full = spec.models(ModelSel::ALL.to_vec());
        assert_eq!(full.models.len(), 4);
        assert_eq!(full.solo_of(0).models, full.models);
    }

    #[test]
    fn placement_defaults_anywhere_and_applies_per_process() {
        let p = ProcSpec::new("a", WorkloadKind::Md);
        assert_eq!(p.placement, Placement::Anywhere);
        let spec = ScenarioSpec::new("place", 4)
            .process(ProcSpec::new("a", WorkloadKind::Md))
            .process(ProcSpec::new("b", WorkloadKind::Md))
            .process(ProcSpec::new("c", WorkloadKind::Md))
            .with_placements(&[Placement::Node(0), Placement::Node(1)]);
        assert_eq!(spec.procs[0].placement, Placement::Node(0));
        assert_eq!(spec.procs[1].placement, Placement::Node(1));
        assert_eq!(spec.procs[2].placement, Placement::Node(0), "cycled");
        // solo_of keeps the pin (a pinned solo baseline measures the pinned capacity).
        assert_eq!(spec.solo_of(1).procs[0].placement, Placement::Node(1));
        assert_eq!(Placement::Node(1).label(), "node1");
        assert_eq!(Placement::Spread.label(), "spread");
    }

    #[test]
    fn fault_schedule_builds_and_lowers_per_process() {
        let fs = FaultPlanSpec::new(0xC4A0)
            .panics(3, 2)
            .kill(1, 2)
            .sched_site(FaultSpec::new(FaultSite::DuplicateWakeup).one_in(5));
        assert!(!fs.is_empty());
        // The victim's driver plan arms ProcessDeath; co-tenants' plans do not.
        let victim = fs.driver_plan(1);
        assert!(victim
            .specs
            .iter()
            .any(|s| s.site == FaultSite::ProcessDeath));
        let cotenant = fs.driver_plan(0);
        assert!(!cotenant
            .specs
            .iter()
            .any(|s| s.site == FaultSite::ProcessDeath));
        // Both arm panics; their seeds differ (per-process decision streams).
        assert!(victim
            .specs
            .iter()
            .any(|s| s.site == FaultSite::TaskBodyPanic));
        assert_ne!(victim.seed, cotenant.seed);
        // The sched plan carries exactly the armed sched sites under the schedule seed.
        let sp = fs.sched_plan();
        assert_eq!(sp.seed, 0xC4A0);
        assert_eq!(sp.specs.len(), 1);
        assert_eq!(sp.specs[0].site, FaultSite::DuplicateWakeup);
        // Determinism: the same schedule lowers to the same plans.
        assert_eq!(fs.driver_plan(0), fs.clone().driver_plan(0));
        assert!(FaultPlanSpec::new(1).is_empty());
    }

    #[test]
    fn faults_attach_to_specs_but_not_to_solo_baselines() {
        let spec = ScenarioSpec::new("chaotic", 2)
            .process(ProcSpec::new("a", WorkloadKind::SpinSleep))
            .process(ProcSpec::new("b", WorkloadKind::SpinSleep))
            .with_faults(FaultPlanSpec::new(7).panics(2, 1));
        assert!(spec.faults.is_some());
        assert!(
            spec.solo_of(0).faults.is_none(),
            "solo baselines must stay clean"
        );
    }

    #[test]
    fn custom_size_maps_to_dims() {
        assert_eq!(
            ProblemSize::Custom { unit_work_us: 500 }.matrix_dims(),
            (64, 32)
        );
        assert_eq!(
            ProblemSize::Custom {
                unit_work_us: 5_000
            }
            .matrix_dims(),
            (128, 32)
        );
        assert_eq!(
            ProblemSize::Custom {
                unit_work_us: 50_000
            }
            .matrix_dims(),
            (192, 32)
        );
        assert_eq!(ProblemSize::Medium.matrix_dims(), (192, 32));
    }
}
