//! `usf-scenarios` — a declarative co-run/oversubscription scenario engine.
//!
//! The paper's headline claim is not about any single workload: it is that a user-space
//! cooperative scheduler keeps *co-running, mutually oversubscribing* processes and
//! runtimes fast and fair where the OS's preemptive scheduler thrashes. This crate turns
//! "one figure = one binary" into "one spec = any co-run experiment on any stack":
//!
//! 1. **Spec** ([`spec`]): a [`ScenarioSpec`] describes N processes — workload kind,
//!    problem size, runtime flavour, thread/core demand, arrival phase — as data.
//! 2. **Executors** ([`executor`], [`sim`]): one trait, three stacks. [`OsExecutor`] runs
//!    the spec on plain OS threads (kernel preemption), [`UsfExecutor`] on cooperative
//!    USF threads of one shared scheduler instance (SCHED_COOP), and [`SimExecutor`]
//!    lowers the *same* spec into the `usf-simsched` discrete-event simulator at
//!    paper-scale core counts.
//! 3. **Report** ([`report`]): per-process makespan, slowdown-vs-solo, Jain fairness,
//!    unit-latency percentiles and scheduler-metrics deltas.
//!
//! The canned [`library`] holds the co-run experiments the paper argues about (solo runs,
//! the HPC pair, latency-vs-batch co-location, the 1×–8× oversubscription ramp); the
//! `fig6_oversub` binary in `usf-bench` drives the ramp through all three stacks.
//!
//! ```
//! use usf_scenarios::{library, Executor, OsExecutor, SimExecutor};
//! use usf_scenarios::spec::ProblemSize;
//!
//! let spec = library::oversub_ramp(2, 2, ProblemSize::Tiny);
//! let real = OsExecutor.run_spec(&spec);           // kernel scheduler, real threads
//! let sim = SimExecutor::sched_coop().run_spec(&spec); // 112 simulated cores, SCHED_COOP
//! assert_eq!(real.processes.len(), sim.processes.len());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod executor;
pub mod library;
pub mod plan;
pub mod report;
pub mod sim;
pub mod spec;

pub use executor::{Executor, OsExecutor, UsfExecutor};
pub use plan::{ProcPlan, ScenarioPlan};
pub use report::{ProcessOutcome, ScenarioReport, SchedDelta};
pub use sim::{LoweredScenario, SimExecutor, SimProcShape};
pub use spec::{
    Arrival, FaultPlanSpec, ModelSel, Placement, ProblemSize, ProcSpec, RuntimeFlavor,
    ScenarioSpec, WorkloadKind,
};
