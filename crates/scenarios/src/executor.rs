//! The [`Executor`] trait and the two real-execution stacks.
//!
//! [`OsExecutor`] runs every process of a spec on plain OS threads (the paper's baseline:
//! the kernel time-slices the oversubscribed node), [`UsfExecutor`] runs the *same spec*
//! on cooperative USF threads of one shared scheduler instance — each [`ProcSpec`](crate::ProcSpec) becomes
//! a process domain of the shared `NosvInstance`, exactly the multi-process attachment
//! model of §2.3/§4.3.3. The third stack, [`crate::SimExecutor`], lowers the spec into the
//! discrete-event simulator at paper-scale core counts.

use crate::plan::{ProcPlan, MD_IMBALANCE};
use crate::report::{ProcessOutcome, ScenarioReport, SchedDelta};
use crate::spec::{ScenarioSpec, WorkloadKind};
use std::time::{Duration, Instant};
use usf_core::exec::ExecMode;
use usf_core::runtime::Usf;
use usf_nosv::{MetricsSnapshot, Topology};
use usf_workloads::workload::{
    CholeskyWorkload, MatmulWorkload, RuntimeFlavor, SyntheticWorkload, Workload,
};
use usf_workloads::{CholeskyConfig, MatmulConfig};

/// An execution stack that can run any [`ScenarioSpec`].
pub trait Executor {
    /// Label used in reports (`baseline-os`, `sched_coop`, `sim-linux-fair`, …).
    fn label(&self) -> String;

    /// Run the scenario and report per-process outcomes.
    fn run_spec(&self, spec: &ScenarioSpec) -> ScenarioReport;

    /// Run the scenario *and* each process's solo baseline, filling in
    /// `slowdown_vs_solo` — the one-call version of every slowdown figure.
    fn run_with_solo_baselines(&self, spec: &ScenarioSpec) -> ScenarioReport {
        let mut report = self.run_spec(spec);
        let solos: Vec<Option<Duration>> = (0..spec.procs.len())
            .map(|i| {
                let solo = self.run_spec(&spec.solo_of(i));
                solo.processes.first().map(|p| p.makespan)
            })
            .collect();
        report.apply_solo_baseline(&solos);
        report
    }
}

/// Map one planned process to a real workload over the given thread backend.
///
/// The open-loop kinds (microservices, poisson-burst) are built *without* internal pacing:
/// the driver injects the plan's seeded arrival gaps so that all three executors pace
/// units identically (the lowering-equivalence invariant).
fn build_workload(p: &ProcPlan, exec: ExecMode) -> Box<dyn Workload> {
    let threads = p.threads;
    match p.kind {
        WorkloadKind::Matmul => {
            let (n, ts) = p.spec.size.matrix_dims();
            Box::new(MatmulWorkload::new(MatmulConfig {
                matrix_size: n,
                task_size: ts,
                inner_threads: inner_threads(threads),
                outer_workers: outer_workers(threads),
                inner_threading: blas_threading(p.flavor),
                barrier: usf_blas::BarrierKind::BusyYield { yield_every: 64 },
                exec,
                iterations: 1,
            }))
        }
        WorkloadKind::Cholesky => {
            let (n, ts) = p.spec.size.matrix_dims();
            Box::new(CholeskyWorkload::new(CholeskyConfig {
                matrix_size: n,
                tile_size: ts,
                outer_workers: outer_workers(threads),
                inner_threads: inner_threads(threads),
                inner_threading: blas_threading(p.flavor),
                barrier: usf_blas::BarrierKind::BusyYield { yield_every: 64 },
                exec,
            }))
        }
        WorkloadKind::Md => Box::new(SyntheticWorkload::md_steps(
            threads,
            p.flavor,
            exec,
            p.unit_work,
            MD_IMBALANCE,
        )),
        WorkloadKind::SpinSleep => Box::new(SyntheticWorkload::spin_sleep(
            threads,
            p.flavor,
            exec,
            p.unit_work,
            p.post_unit_sleep().unwrap_or(Duration::ZERO),
        )),
        WorkloadKind::Microservices | WorkloadKind::PoissonBurst => {
            // Uniform parallel request/burst region; the arrival gaps come from the plan.
            Box::new(SyntheticWorkload::spin_sleep(
                threads,
                p.flavor,
                exec,
                p.unit_work,
                Duration::ZERO,
            ))
        }
    }
}

fn outer_workers(threads: usize) -> usize {
    threads.div_ceil(2).max(1)
}

fn inner_threads(threads: usize) -> usize {
    if threads > 1 {
        2
    } else {
        1
    }
}

fn blas_threading(flavor: RuntimeFlavor) -> usf_blas::BlasThreading {
    match flavor {
        RuntimeFlavor::ThreadPool => usf_blas::BlasThreading::PthreadPerCall,
        _ => usf_blas::BlasThreading::OpenMpLike,
    }
}

/// What one driver thread returns.
struct ProcRun {
    makespan: Duration,
    unit_latencies_s: Vec<f64>,
}

/// Drive one planned process: wait for its arrival, set the workload up, run the units
/// (injecting the plan's pacing gaps), tear down. `attach` is called after the arrival
/// sleep and its result dropped after teardown — the USF stack passes the cooperative
/// attach guard through it, the OS stack a no-op. `mask` is the process's lowered
/// placement mask, recorded as an affinity *hint* (§4.3.2: stored and echoed back, never
/// applied by the hint itself — enforcement, where any, is the scheduler domain installed
/// by the executor).
fn drive_process<G>(
    p: &ProcPlan,
    epoch: Instant,
    exec: ExecMode,
    mask: Option<&[usize]>,
    attach: impl FnOnce() -> G,
) -> ProcRun {
    let since = epoch.elapsed();
    if p.arrival > since {
        std::thread::sleep(p.arrival - since);
    }
    let _guard = attach();
    if let Some(mask) = mask {
        usf_core::affinity::set_affinity_hint(mask.iter().copied().collect());
    }
    let gaps = p.pacing_gaps();
    let mut workload = build_workload(p, exec);
    workload.setup();
    let start = Instant::now();
    let mut unit_latencies_s = Vec::with_capacity(p.units);
    for unit in 0..p.units {
        let u0 = Instant::now();
        if let Some(gap) = gaps.get(unit) {
            usf_core::timing::sleep(*gap);
        }
        workload.run_unit(unit);
        unit_latencies_s.push(u0.elapsed().as_secs_f64());
    }
    let makespan = start.elapsed();
    workload.teardown();
    ProcRun {
        makespan,
        unit_latencies_s,
    }
}

fn collect_outcomes(
    plan: &crate::plan::ScenarioPlan,
    runs: Vec<ProcRun>,
    total: Duration,
    scenario: &str,
    executor: String,
    sched: Option<SchedDelta>,
) -> ScenarioReport {
    let processes = plan
        .procs
        .iter()
        .zip(runs)
        .map(|(p, r)| ProcessOutcome {
            name: p.name.clone(),
            arrival: p.arrival,
            threads: p.threads,
            makespan: r.makespan,
            unit_latencies_s: r.unit_latencies_s,
            slowdown_vs_solo: None,
            // The real stacks cannot observe virtual-core placement per thread; only the
            // simulator measures migrations.
            migrations: None,
            cross_socket_migrations: None,
        })
        .collect();
    ScenarioReport {
        scenario: scenario.to_string(),
        executor,
        total_makespan: total,
        processes,
        sched,
        model: None,
    }
}

/// The OS baseline stack: plain `std::thread`s under the kernel's preemptive scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsExecutor;

impl Executor for OsExecutor {
    fn label(&self) -> String {
        "baseline-os".to_string()
    }

    fn run_spec(&self, spec: &ScenarioSpec) -> ScenarioReport {
        let plan = spec.plan();
        // The OS baseline cannot pin threads in this reproduction (no libc): placement
        // lowers to recorded-but-unapplied affinity hints over a single-node view of the
        // core budget — exactly the "hints only" contract of §4.3.2.
        let masks = plan.placement_masks(&Topology::single_node(plan.cores.max(1)));
        let epoch = Instant::now();
        let handles: Vec<_> = plan
            .procs
            .iter()
            .map(|p| {
                let p = p.clone();
                let mask = masks[p.index].clone();
                std::thread::spawn(move || {
                    drive_process(&p, epoch, ExecMode::Os, mask.as_deref(), || ())
                })
            })
            .collect();
        let runs: Vec<ProcRun> = handles
            .into_iter()
            .map(|h| h.join().expect("scenario driver panicked"))
            .collect();
        let total = epoch.elapsed();
        collect_outcomes(&plan, runs, total, &spec.name, self.label(), None)
    }
}

/// The USF stack: one shared scheduler instance, one process domain per [`ProcSpec`](crate::ProcSpec), all
/// threads cooperative (SCHED_COOP).
#[derive(Debug, Clone, Copy, Default)]
pub struct UsfExecutor {
    /// Virtual cores of the shared instance; defaults to the spec's core budget.
    pub cores: Option<usize>,
    /// NUMA nodes the virtual cores are split into; defaults to the host model of
    /// [`Topology::detect`] (which honours `USF_NUMA_NODES`). Placement lowers over this
    /// layout.
    pub numa_nodes: Option<usize>,
}

impl UsfExecutor {
    /// Executor over the spec's own core budget.
    pub fn new() -> Self {
        UsfExecutor::default()
    }

    /// Executor modelling `numa_nodes` NUMA nodes (builder style) — the two-socket layout
    /// of the §5.6 placement variants.
    pub fn numa_nodes(mut self, nodes: usize) -> Self {
        self.numa_nodes = Some(nodes.max(1));
        self
    }
}

impl Executor for UsfExecutor {
    fn label(&self) -> String {
        "sched_coop".to_string()
    }

    fn run_spec(&self, spec: &ScenarioSpec) -> ScenarioReport {
        let cores = self.cores.unwrap_or(spec.cores).max(1);
        let nodes = self
            .numa_nodes
            .unwrap_or_else(|| Topology::detect().num_numa_nodes())
            .clamp(1, cores);
        let plan = spec.plan();
        let usf = Usf::builder().cores(cores).numa_nodes(nodes).build();
        // Placement lowers over the instance topology into per-process scheduler domains
        // (enforced by the grant/pick paths) plus recorded affinity hints (§4.3.2).
        let masks = plan.placement_masks(usf.topology());
        let before = usf.metrics();
        let epoch = Instant::now();
        let handles: Vec<_> = plan
            .procs
            .iter()
            .map(|p| {
                let p = p.clone();
                // Every ProcSpec is its own process domain of the shared scheduler: the
                // per-process quantum rotates among them like nOS-V processes on one shm
                // segment.
                let domain = usf.process(p.name.clone());
                let mask = masks[p.index].clone();
                domain.restrict_to_cores(mask.clone());
                std::thread::spawn(move || {
                    let exec = ExecMode::Usf(domain.clone());
                    // The driver is the process's "main thread": it attaches after the
                    // arrival sleep and participates cooperatively from then on.
                    drive_process(&p, epoch, exec, mask.as_deref(), || domain.attach_current())
                })
            })
            .collect();
        let runs: Vec<ProcRun> = handles
            .into_iter()
            .map(|h| h.join().expect("scenario driver panicked"))
            .collect();
        let total = epoch.elapsed();
        let after = usf.metrics();
        usf.shutdown();
        let sched = Some(usf_sched_delta(&before, &after));
        collect_outcomes(&plan, runs, total, &spec.name, self.label(), sched)
    }
}

/// Scheduler-metrics delta of a USF run.
fn usf_sched_delta(before: &MetricsSnapshot, after: &MetricsSnapshot) -> SchedDelta {
    let d = |b: u64, a: u64| (a - b) as f64;
    SchedDelta {
        scheduler: "sched_coop".to_string(),
        counters: vec![
            ("submits".into(), d(before.submits, after.submits)),
            ("grants".into(), d(before.grants, after.grants)),
            ("yields".into(), d(before.yields, after.yields)),
            (
                "yields_noop".into(),
                d(before.yields_noop, after.yields_noop),
            ),
            ("pauses".into(), d(before.pauses, after.pauses)),
            ("attaches".into(), d(before.attaches, after.attaches)),
            (
                "affinity_hits".into(),
                d(before.affinity_hits, after.affinity_hits),
            ),
            (
                "process_rotations".into(),
                d(before.process_rotations, after.process_rotations),
            ),
            (
                "lock_acquisitions".into(),
                d(before.lock_acquisitions, after.lock_acquisitions),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Arrival, ProblemSize, ProcSpec};

    fn tiny_pair() -> ScenarioSpec {
        ScenarioSpec::new("exec-test-pair", 2)
            .process(
                ProcSpec::new("md", WorkloadKind::Md)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(2),
            )
            .process(
                ProcSpec::new("spin", WorkloadKind::SpinSleep)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(2)
                    .arrival(Arrival::Delayed(Duration::from_millis(1))),
            )
    }

    #[test]
    fn os_executor_runs_a_pair() {
        let r = OsExecutor.run_spec(&tiny_pair());
        assert_eq!(r.executor, "baseline-os");
        assert_eq!(r.processes.len(), 2);
        for p in &r.processes {
            assert_eq!(p.unit_latencies_s.len(), 2);
            assert!(p.makespan > Duration::ZERO);
        }
        assert!(r.sched.is_none());
        assert!(r.total_makespan >= r.processes[0].makespan);
    }

    #[test]
    fn usf_executor_runs_the_same_spec_cooperatively() {
        let r = UsfExecutor::new().run_spec(&tiny_pair());
        assert_eq!(r.executor, "sched_coop");
        assert_eq!(r.processes.len(), 2);
        let sched = r.sched.expect("USF runs report scheduler metrics");
        assert!(sched.get("attaches").unwrap() >= 2.0, "{sched:?}");
        assert!(sched.get("grants").unwrap() > 0.0);
    }

    #[test]
    fn solo_baselines_fill_slowdowns() {
        let r = OsExecutor.run_with_solo_baselines(&tiny_pair());
        for p in &r.processes {
            let s = p.slowdown_vs_solo.expect("solo baseline ran");
            assert!(s > 0.0);
        }
        assert!(r.jain_fairness() > 0.0);
    }

    #[test]
    fn usf_executor_applies_placement_as_domains_and_completes() {
        use crate::spec::Placement;
        // Two spin-sleep processes pinned to opposite nodes of a 4-core, 2-node instance:
        // the run must complete with both domains making progress (each is confined to 2
        // cores; a broken domain would strand its driver forever). Per-thread placement
        // enforcement itself is pinned by the usf-core runtime tests.
        let spec = ScenarioSpec::new("pinned-pair", 4)
            .process(
                ProcSpec::new("a", WorkloadKind::SpinSleep)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(2)
                    .placement(Placement::Node(0)),
            )
            .process(
                ProcSpec::new("b", WorkloadKind::SpinSleep)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(2)
                    .placement(Placement::Node(1)),
            );
        let r = UsfExecutor {
            cores: Some(4),
            ..Default::default()
        }
        .numa_nodes(2)
        .run_spec(&spec);
        assert_eq!(r.processes.len(), 2);
        for p in &r.processes {
            assert!(p.makespan > Duration::ZERO);
            assert!(
                p.migrations.is_none(),
                "real stacks do not measure placement"
            );
        }
        assert!(r.sched.unwrap().get("grants").unwrap() > 0.0);
    }

    #[test]
    fn hpc_kinds_run_for_real_on_both_stacks() {
        let spec = ScenarioSpec::new("hpc-tiny", 2)
            .process(
                ProcSpec::new("mm", WorkloadKind::Matmul)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(1),
            )
            .process(
                ProcSpec::new("chol", WorkloadKind::Cholesky)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(1),
            );
        for report in [
            OsExecutor.run_spec(&spec),
            UsfExecutor::new().run_spec(&spec),
        ] {
            assert_eq!(report.processes.len(), 2);
            for p in &report.processes {
                assert_eq!(p.unit_latencies_s.len(), 1);
            }
        }
    }
}
