//! The [`Executor`] trait and the two real-execution stacks.
//!
//! [`OsExecutor`] runs every process of a spec on plain OS threads (the paper's baseline:
//! the kernel time-slices the oversubscribed node), [`UsfExecutor`] runs the *same spec*
//! on cooperative USF threads of one shared scheduler instance — each [`ProcSpec`](crate::ProcSpec) becomes
//! a process domain of the shared `NosvInstance`, exactly the multi-process attachment
//! model of §2.3/§4.3.3. The third stack, [`crate::SimExecutor`], lowers the spec into the
//! discrete-event simulator at paper-scale core counts.

use crate::plan::{ProcPlan, MD_IMBALANCE};
use crate::report::{ProcessOutcome, ScenarioReport, SchedDelta};
use crate::spec::{FaultPlanSpec, FaultSite, ScenarioSpec, WorkloadKind};
use std::time::{Duration, Instant};
use usf_core::exec::ExecMode;
use usf_core::runtime::Usf;
use usf_nosv::{FaultState, MetricsSnapshot, Topology};
use usf_workloads::workload::{
    CholeskyWorkload, MatmulWorkload, RuntimeFlavor, SyntheticWorkload, Workload,
};
use usf_workloads::{CholeskyConfig, MatmulConfig};

/// An execution stack that can run any [`ScenarioSpec`].
pub trait Executor {
    /// Label used in reports (`baseline-os`, `sched_coop`, `sim-linux-fair`, …).
    fn label(&self) -> String;

    /// Run the scenario and report per-process outcomes.
    fn run_spec(&self, spec: &ScenarioSpec) -> ScenarioReport;

    /// Run the scenario *and* each process's solo baseline, filling in
    /// `slowdown_vs_solo` — the one-call version of every slowdown figure.
    fn run_with_solo_baselines(&self, spec: &ScenarioSpec) -> ScenarioReport {
        let mut report = self.run_spec(spec);
        let solos: Vec<Option<Duration>> = (0..spec.procs.len())
            .map(|i| {
                let solo = self.run_spec(&spec.solo_of(i));
                solo.processes.first().map(|p| p.makespan)
            })
            .collect();
        report.apply_solo_baseline(&solos);
        report
    }
}

/// Map one planned process to a real workload over the given thread backend.
///
/// The open-loop kinds (microservices, poisson-burst) are built *without* internal pacing:
/// the driver injects the plan's seeded arrival gaps so that all three executors pace
/// units identically (the lowering-equivalence invariant).
fn build_workload(p: &ProcPlan, exec: ExecMode) -> Box<dyn Workload> {
    let threads = p.threads;
    match p.kind {
        WorkloadKind::Matmul => {
            let (n, ts) = p.spec.size.matrix_dims();
            Box::new(MatmulWorkload::new(MatmulConfig {
                matrix_size: n,
                task_size: ts,
                inner_threads: inner_threads(threads),
                outer_workers: outer_workers(threads),
                inner_threading: blas_threading(p.flavor),
                barrier: usf_blas::BarrierKind::BusyYield { yield_every: 64 },
                exec,
                iterations: 1,
            }))
        }
        WorkloadKind::Cholesky => {
            let (n, ts) = p.spec.size.matrix_dims();
            Box::new(CholeskyWorkload::new(CholeskyConfig {
                matrix_size: n,
                tile_size: ts,
                outer_workers: outer_workers(threads),
                inner_threads: inner_threads(threads),
                inner_threading: blas_threading(p.flavor),
                barrier: usf_blas::BarrierKind::BusyYield { yield_every: 64 },
                exec,
            }))
        }
        WorkloadKind::Md => Box::new(SyntheticWorkload::md_steps(
            threads,
            p.flavor,
            exec,
            p.unit_work,
            MD_IMBALANCE,
        )),
        WorkloadKind::SpinSleep => Box::new(SyntheticWorkload::spin_sleep(
            threads,
            p.flavor,
            exec,
            p.unit_work,
            p.post_unit_sleep().unwrap_or(Duration::ZERO),
        )),
        WorkloadKind::Microservices | WorkloadKind::PoissonBurst => {
            // Uniform parallel request/burst region; the arrival gaps come from the plan.
            Box::new(SyntheticWorkload::spin_sleep(
                threads,
                p.flavor,
                exec,
                p.unit_work,
                Duration::ZERO,
            ))
        }
    }
}

fn outer_workers(threads: usize) -> usize {
    threads.div_ceil(2).max(1)
}

fn inner_threads(threads: usize) -> usize {
    if threads > 1 {
        2
    } else {
        1
    }
}

fn blas_threading(flavor: RuntimeFlavor) -> usf_blas::BlasThreading {
    match flavor {
        RuntimeFlavor::ThreadPool => usf_blas::BlasThreading::PthreadPerCall,
        _ => usf_blas::BlasThreading::OpenMpLike,
    }
}

/// What one driver thread returns.
struct ProcRun {
    makespan: Duration,
    unit_latencies_s: Vec<f64>,
    injected_faults: u64,
    panicked_units: Vec<usize>,
    survived: bool,
}

/// Per-process fault context of one driver thread: the seeded decision state plus the
/// stack-specific kill hook (`None` on stacks without a shared scheduler — the victim
/// then simply stops running units, which is all "process death" can mean there).
struct DriverFaults {
    state: FaultState,
    kill_after_units: Option<usize>,
    kill: Option<Box<dyn FnOnce() + Send>>,
}

impl DriverFaults {
    /// The context of process `index` under `schedule`, or `None` when nothing
    /// driver-level is armed for it.
    fn for_proc(
        schedule: Option<&FaultPlanSpec>,
        index: usize,
        kill: Option<Box<dyn FnOnce() + Send>>,
    ) -> Option<DriverFaults> {
        let fs = schedule?;
        let plan = fs.driver_plan(index);
        if plan.is_empty() {
            return None;
        }
        DriverFaults {
            state: FaultState::new(&plan),
            kill_after_units: (fs.kill_proc == Some(index)).then_some(fs.kill_after_units),
            kill,
        }
        .into()
    }
}

/// Drive one planned process: wait for its arrival, set the workload up, run the units
/// (injecting the plan's pacing gaps), tear down. `attach` is called after the arrival
/// sleep and its result dropped after teardown — the USF stack passes the cooperative
/// attach guard through it, the OS stack a no-op. `mask` is the process's lowered
/// placement mask, recorded as an affinity *hint* (§4.3.2: stored and echoed back, never
/// applied by the hint itself — enforcement, where any, is the scheduler domain installed
/// by the executor). `faults` is the process's driver-level fault context, if any: unit
/// bodies may be made to panic (caught; the unit is lost, the process continues) and the
/// process may be killed mid-run after a set number of units.
fn drive_process<G>(
    p: &ProcPlan,
    epoch: Instant,
    exec: ExecMode,
    mask: Option<&[usize]>,
    mut faults: Option<DriverFaults>,
    attach: impl FnOnce() -> G,
) -> ProcRun {
    let since = epoch.elapsed();
    if p.arrival > since {
        std::thread::sleep(p.arrival - since);
    }
    let _guard = attach();
    if let Some(mask) = mask {
        usf_core::affinity::set_affinity_hint(mask.iter().copied().collect());
    }
    let gaps = p.pacing_gaps();
    let mut workload = build_workload(p, exec);
    workload.setup();
    let start = Instant::now();
    let mut unit_latencies_s = Vec::with_capacity(p.units);
    let mut panicked_units = Vec::new();
    let mut survived = true;
    for unit in 0..p.units {
        let u0 = Instant::now();
        if let Some(gap) = gaps.get(unit) {
            usf_core::timing::sleep(*gap);
        }
        let inject_panic = faults
            .as_ref()
            .is_some_and(|f| f.state.consult(FaultSite::TaskBodyPanic, None));
        // Degradation contract: a panicking unit body (injected or genuine) loses that
        // unit and nothing else — the driver records it and moves on to the next unit.
        let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected unit-body panic (process {}, unit {unit})", p.name);
            }
            workload.run_unit(unit);
        }));
        if ran.is_err() {
            panicked_units.push(unit);
        }
        unit_latencies_s.push(u0.elapsed().as_secs_f64());
        // Process death fires between units, while the driver's own task is still live on
        // the scheduler — the kill reclaims it mid-run along with anything queued.
        if let Some(f) = faults.as_mut() {
            if f.kill_after_units.is_some_and(|k| unit + 1 >= k) {
                f.state.consult(FaultSite::ProcessDeath, None);
                if let Some(kill) = f.kill.take() {
                    kill();
                }
                survived = false;
                break; // The remaining units die with the process.
            }
        }
    }
    let makespan = start.elapsed();
    workload.teardown();
    ProcRun {
        makespan,
        unit_latencies_s,
        injected_faults: faults.as_ref().map_or(0, |f| f.state.total_fires()),
        panicked_units,
        survived,
    }
}

fn collect_outcomes(
    plan: &crate::plan::ScenarioPlan,
    runs: Vec<ProcRun>,
    total: Duration,
    scenario: &str,
    executor: String,
    sched: Option<SchedDelta>,
) -> ScenarioReport {
    let processes = plan
        .procs
        .iter()
        .zip(runs)
        .map(|(p, r)| ProcessOutcome {
            name: p.name.clone(),
            arrival: p.arrival,
            threads: p.threads,
            makespan: r.makespan,
            unit_latencies_s: r.unit_latencies_s,
            slowdown_vs_solo: None,
            // The real stacks cannot observe virtual-core placement per thread; only the
            // simulator measures migrations.
            migrations: None,
            cross_socket_migrations: None,
            injected_faults: r.injected_faults,
            panicked_units: r.panicked_units,
            survived: r.survived,
        })
        .collect();
    ScenarioReport {
        scenario: scenario.to_string(),
        executor,
        total_makespan: total,
        processes,
        sched,
        stages: None,
        samples: Vec::new(),
        model: None,
    }
}

/// The OS baseline stack: plain `std::thread`s under the kernel's preemptive scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsExecutor;

impl Executor for OsExecutor {
    fn label(&self) -> String {
        "baseline-os".to_string()
    }

    fn run_spec(&self, spec: &ScenarioSpec) -> ScenarioReport {
        let plan = spec.plan();
        // The OS baseline cannot pin threads in this reproduction (no libc): placement
        // lowers to recorded-but-unapplied affinity hints over a single-node view of the
        // core budget — exactly the "hints only" contract of §4.3.2.
        let masks = plan.placement_masks(&Topology::single_node(plan.cores.max(1)));
        let epoch = Instant::now();
        let handles: Vec<_> = plan
            .procs
            .iter()
            .map(|p| {
                let p = p.clone();
                let mask = masks[p.index].clone();
                // No shared scheduler to reclaim: "death" on the OS stack is the victim
                // simply ceasing to run units (kill hook None).
                let faults = DriverFaults::for_proc(spec.faults.as_ref(), p.index, None);
                std::thread::spawn(move || {
                    drive_process(&p, epoch, ExecMode::Os, mask.as_deref(), faults, || ())
                })
            })
            .collect();
        let runs: Vec<ProcRun> = handles
            .into_iter()
            .map(|h| h.join().expect("scenario driver panicked"))
            .collect();
        let total = epoch.elapsed();
        collect_outcomes(&plan, runs, total, &spec.name, self.label(), None)
    }
}

/// The USF stack: one shared scheduler instance, one process domain per [`ProcSpec`](crate::ProcSpec), all
/// threads cooperative (SCHED_COOP).
#[derive(Debug, Clone, Copy, Default)]
pub struct UsfExecutor {
    /// Virtual cores of the shared instance; defaults to the spec's core budget.
    pub cores: Option<usize>,
    /// NUMA nodes the virtual cores are split into; defaults to the host model of
    /// [`Topology::detect`] (which honours `USF_NUMA_NODES`). Placement lowers over this
    /// layout.
    pub numa_nodes: Option<usize>,
    /// When set, a background stats sampler runs for the scenario at this period and the
    /// collected series lands in [`ScenarioReport::samples`]. Off by default.
    pub sample_period: Option<Duration>,
}

impl UsfExecutor {
    /// Executor over the spec's own core budget.
    pub fn new() -> Self {
        UsfExecutor::default()
    }

    /// Executor modelling `numa_nodes` NUMA nodes (builder style) — the two-socket layout
    /// of the §5.6 placement variants.
    pub fn numa_nodes(mut self, nodes: usize) -> Self {
        self.numa_nodes = Some(nodes.max(1));
        self
    }

    /// Run scenarios with a background stats sampler at `period` (builder style): the
    /// sampled gauge series lands in [`ScenarioReport::samples`].
    pub fn sample_period(mut self, period: Duration) -> Self {
        self.sample_period = Some(period);
        self
    }
}

impl Executor for UsfExecutor {
    fn label(&self) -> String {
        "sched_coop".to_string()
    }

    fn run_spec(&self, spec: &ScenarioSpec) -> ScenarioReport {
        let cores = self.cores.unwrap_or(spec.cores).max(1);
        let nodes = self
            .numa_nodes
            .unwrap_or_else(|| Topology::detect().num_numa_nodes())
            .clamp(1, cores);
        let plan = spec.plan();
        let usf = Usf::builder().cores(cores).numa_nodes(nodes).build();
        // Placement lowers over the instance topology into per-process scheduler domains
        // (enforced by the grant/pick paths) plus recorded affinity hints (§4.3.2).
        let masks = plan.placement_masks(usf.topology());
        // Scheduler-level fault sites only exist when the stack is compiled with
        // `fault-inject`; driver-level faults below work regardless.
        #[cfg(feature = "fault-inject")]
        let fault_state: Option<std::sync::Arc<FaultState>> = spec
            .faults
            .as_ref()
            .filter(|fs| !fs.sched_sites.is_empty())
            .map(|fs| usf.install_faults(&fs.sched_plan()));
        // A faulted run gets a watchdog thread: the degradation contract in action. It
        // flags grants held past the deadline (stalls_detected) and runs the rescue
        // drain, which bounds how long a fault-delayed submit can sit in the intake —
        // without it, an unbounded `DelayIntakeDrain` site could strand the final
        // wakeup with every cooperative thread parked.
        #[cfg(feature = "fault-inject")]
        let watchdog = fault_state.as_ref().map(|_| {
            use std::sync::atomic::{AtomicBool, Ordering};
            let stop = std::sync::Arc::new(AtomicBool::new(false));
            let sched = std::sync::Arc::clone(usf.nosv().scheduler());
            let stop2 = std::sync::Arc::clone(&stop);
            let handle = std::thread::spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    let _ = sched.watchdog_scan(Duration::from_millis(20));
                    sched.rescue_drain();
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
            (stop, handle)
        });
        let before = usf.stats_snapshot();
        let sampler = self.sample_period.map(|period| usf.start_sampler(period));
        let epoch = Instant::now();
        let handles: Vec<_> = plan
            .procs
            .iter()
            .map(|p| {
                let p = p.clone();
                // Every ProcSpec is its own process domain of the shared scheduler: the
                // per-process quantum rotates among them like nOS-V processes on one shm
                // segment.
                let domain = usf.process(p.name.clone());
                let mask = masks[p.index].clone();
                domain.restrict_to_cores(mask.clone());
                // Mid-run death forcibly reclaims the victim's domain: queued work is
                // dropped, running tasks evicted, waiters released — and the driver
                // itself continues as a plain OS thread (the release safety valve).
                let kill_domain = domain.clone();
                let kill: Box<dyn FnOnce() + Send> = Box::new(move || {
                    let _ = kill_domain.kill();
                });
                let faults = DriverFaults::for_proc(spec.faults.as_ref(), p.index, Some(kill));
                std::thread::spawn(move || {
                    let exec = ExecMode::Usf(domain.clone());
                    // The driver is the process's "main thread": it attaches after the
                    // arrival sleep and participates cooperatively from then on.
                    drive_process(&p, epoch, exec, mask.as_deref(), faults, || {
                        domain.attach_current()
                    })
                })
            })
            .collect();
        let runs: Vec<ProcRun> = handles
            .into_iter()
            .map(|h| h.join().expect("scenario driver panicked"))
            .collect();
        let total = epoch.elapsed();
        #[cfg(feature = "fault-inject")]
        if let Some((stop, handle)) = watchdog {
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let _ = handle.join();
        }
        let after = usf.stats_snapshot();
        let samples = sampler.map(|s| s.stop()).unwrap_or_default();
        usf.shutdown();
        let stats_delta = after.delta(&before);
        #[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
        let mut delta = usf_sched_delta(&stats_delta.counters);
        // Per-site ground truth for chaos oracles: how often each armed scheduler-level
        // site actually fired (e.g. `stalls_detected >= fault_fires_worker_stall`).
        #[cfg(feature = "fault-inject")]
        if let Some(state) = &fault_state {
            for site in FaultSite::ALL {
                let fires = state.fires(site);
                if fires > 0 {
                    delta
                        .counters
                        .push((format!("fault_fires_{}", site.label()), fires as f64));
                }
            }
        }
        let mut report =
            collect_outcomes(&plan, runs, total, &spec.name, self.label(), Some(delta));
        report.stages = Some(stats_delta.stages);
        report.samples = samples;
        report
    }
}

/// Scheduler-metrics delta of a USF run, from an already-computed
/// [`MetricsSnapshot::delta`] interval.
fn usf_sched_delta(d: &MetricsSnapshot) -> SchedDelta {
    SchedDelta {
        scheduler: "sched_coop".to_string(),
        counters: vec![
            ("submits".into(), d.submits as f64),
            ("grants".into(), d.grants as f64),
            ("yields".into(), d.yields as f64),
            ("yields_noop".into(), d.yields_noop as f64),
            ("pauses".into(), d.pauses as f64),
            ("attaches".into(), d.attaches as f64),
            ("affinity_hits".into(), d.affinity_hits as f64),
            ("process_rotations".into(), d.process_rotations as f64),
            ("lock_acquisitions".into(), d.lock_acquisitions as f64),
            // Robustness counters: zero on clean runs, non-zero under the fault plane.
            ("faults_injected".into(), d.faults_injected as f64),
            ("processes_killed".into(), d.processes_killed as f64),
            ("tasks_reclaimed".into(), d.tasks_reclaimed as f64),
            ("stalls_detected".into(), d.stalls_detected as f64),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Arrival, ProblemSize, ProcSpec};

    fn tiny_pair() -> ScenarioSpec {
        ScenarioSpec::new("exec-test-pair", 2)
            .process(
                ProcSpec::new("md", WorkloadKind::Md)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(2),
            )
            .process(
                ProcSpec::new("spin", WorkloadKind::SpinSleep)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(2)
                    .arrival(Arrival::Delayed(Duration::from_millis(1))),
            )
    }

    #[test]
    fn os_executor_runs_a_pair() {
        let r = OsExecutor.run_spec(&tiny_pair());
        assert_eq!(r.executor, "baseline-os");
        assert_eq!(r.processes.len(), 2);
        for p in &r.processes {
            assert_eq!(p.unit_latencies_s.len(), 2);
            assert!(p.makespan > Duration::ZERO);
        }
        assert!(r.sched.is_none());
        assert!(r.total_makespan >= r.processes[0].makespan);
    }

    #[test]
    fn usf_executor_runs_the_same_spec_cooperatively() {
        let r = UsfExecutor::new().run_spec(&tiny_pair());
        assert_eq!(r.executor, "sched_coop");
        assert_eq!(r.processes.len(), 2);
        let sched = r.sched.expect("USF runs report scheduler metrics");
        assert!(sched.get("attaches").unwrap() >= 2.0, "{sched:?}");
        assert!(sched.get("grants").unwrap() > 0.0);
    }

    #[test]
    fn solo_baselines_fill_slowdowns() {
        let r = OsExecutor.run_with_solo_baselines(&tiny_pair());
        for p in &r.processes {
            let s = p.slowdown_vs_solo.expect("solo baseline ran");
            assert!(s > 0.0);
        }
        assert!(r.jain_fairness() > 0.0);
    }

    #[test]
    fn usf_executor_applies_placement_as_domains_and_completes() {
        use crate::spec::Placement;
        // Two spin-sleep processes pinned to opposite nodes of a 4-core, 2-node instance:
        // the run must complete with both domains making progress (each is confined to 2
        // cores; a broken domain would strand its driver forever). Per-thread placement
        // enforcement itself is pinned by the usf-core runtime tests.
        let spec = ScenarioSpec::new("pinned-pair", 4)
            .process(
                ProcSpec::new("a", WorkloadKind::SpinSleep)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(2)
                    .placement(Placement::Node(0)),
            )
            .process(
                ProcSpec::new("b", WorkloadKind::SpinSleep)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(2)
                    .placement(Placement::Node(1)),
            );
        let r = UsfExecutor {
            cores: Some(4),
            ..Default::default()
        }
        .numa_nodes(2)
        .run_spec(&spec);
        assert_eq!(r.processes.len(), 2);
        for p in &r.processes {
            assert!(p.makespan > Duration::ZERO);
            assert!(
                p.migrations.is_none(),
                "real stacks do not measure placement"
            );
        }
        assert!(r.sched.unwrap().get("grants").unwrap() > 0.0);
    }

    #[test]
    fn injected_unit_panics_degrade_gracefully() {
        use crate::spec::FaultPlanSpec;
        // Every unit body is armed to panic, capped at 2 per process: each process must
        // lose exactly its first 2 units, keep its full latency vector, and finish the
        // remaining units for real.
        let spec = ScenarioSpec::new("panic-pair", 2)
            .process(
                ProcSpec::new("a", WorkloadKind::SpinSleep)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(4),
            )
            .process(
                ProcSpec::new("b", WorkloadKind::Md)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(4),
            )
            .with_faults(FaultPlanSpec::new(11).panics(1, 2));
        for r in [
            OsExecutor.run_spec(&spec),
            UsfExecutor::new().run_spec(&spec),
        ] {
            for p in &r.processes {
                assert_eq!(p.panicked_units, vec![0, 1], "{}/{}", r.executor, p.name);
                assert_eq!(p.injected_faults, 2, "{}/{}", r.executor, p.name);
                assert_eq!(
                    p.unit_latencies_s.len(),
                    4,
                    "panicked units still account a latency sample ({}/{})",
                    r.executor,
                    p.name
                );
                assert!(p.survived, "a unit panic must not kill the process");
            }
        }
    }

    #[test]
    fn mid_run_process_death_spares_cotenants_on_usf() {
        use crate::spec::FaultPlanSpec;
        // Process 0 dies after its first unit; its domain is forcibly reclaimed. The
        // co-tenant must complete every unit as if the victim never existed.
        let spec = ScenarioSpec::new("death-pair", 2)
            .process(
                ProcSpec::new("victim", WorkloadKind::SpinSleep)
                    .size(ProblemSize::Tiny)
                    .flavor(crate::spec::RuntimeFlavor::ThreadPool)
                    .threads(2)
                    .units(4),
            )
            .process(
                ProcSpec::new("cotenant", WorkloadKind::SpinSleep)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(3),
            )
            .with_faults(FaultPlanSpec::new(5).kill(0, 1));
        let r = UsfExecutor::new().run_spec(&spec);
        let victim = &r.processes[0];
        assert!(!victim.survived, "the victim must report its death");
        assert_eq!(
            victim.unit_latencies_s.len(),
            1,
            "units after death are lost"
        );
        assert!(victim.injected_faults >= 1, "the death is a recorded fault");
        let cotenant = &r.processes[1];
        assert!(cotenant.survived);
        assert_eq!(
            cotenant.unit_latencies_s.len(),
            3,
            "co-tenants complete every unit"
        );
        let sched = r.sched.expect("USF runs report scheduler metrics");
        assert_eq!(
            sched.get("processes_killed"),
            Some(1.0),
            "the scheduler observed exactly one kill: {sched:?}"
        );
    }

    #[test]
    fn os_stack_survives_the_same_death_schedule() {
        use crate::spec::FaultPlanSpec;
        // Same schedule on the OS baseline: no scheduler to reclaim, the victim just
        // stops. The report shape must match the USF stack's.
        let spec = tiny_pair().with_faults(FaultPlanSpec::new(5).kill(0, 1));
        let r = OsExecutor.run_spec(&spec);
        assert!(!r.processes[0].survived);
        assert_eq!(r.processes[0].unit_latencies_s.len(), 1);
        assert!(r.processes[1].survived);
        assert_eq!(r.processes[1].unit_latencies_s.len(), 2);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn unbounded_drain_delays_and_stalls_cannot_hang_a_faulted_run() {
        use crate::spec::{FaultPlanSpec, FaultSpec};
        // Every ordinary intake drain is skipped (unbounded) and one worker stalls for
        // 120ms holding its core. The executor's watchdog thread must keep the run live
        // (rescue drain) and flag the stall — the degradation contract on a real run.
        let spec = tiny_pair().with_faults(
            FaultPlanSpec::new(17)
                .sched_site(FaultSpec::new(FaultSite::DelayIntakeDrain).one_in(1))
                .sched_site(
                    FaultSpec::new(FaultSite::WorkerStall)
                        .one_in(1)
                        .max_fires(1)
                        .stall(Duration::from_millis(120)),
                ),
        );
        let r = UsfExecutor::new().run_spec(&spec);
        for p in &r.processes {
            assert!(p.survived, "{}", p.name);
            assert_eq!(p.unit_latencies_s.len(), 2, "no unit lost ({})", p.name);
        }
        let sched = r.sched.expect("USF runs report scheduler metrics");
        assert!(
            sched.get("fault_fires_delay_intake_drain").unwrap_or(0.0) >= 1.0,
            "drain delays actually fired: {sched:?}"
        );
        let stall_fires = sched.get("fault_fires_worker_stall").unwrap_or(0.0);
        assert_eq!(stall_fires, 1.0, "{sched:?}");
        assert!(
            sched.get("stalls_detected").unwrap_or(0.0) >= stall_fires,
            "every injected stall is flagged: {sched:?}"
        );
    }

    #[test]
    fn hpc_kinds_run_for_real_on_both_stacks() {
        let spec = ScenarioSpec::new("hpc-tiny", 2)
            .process(
                ProcSpec::new("mm", WorkloadKind::Matmul)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(1),
            )
            .process(
                ProcSpec::new("chol", WorkloadKind::Cholesky)
                    .size(ProblemSize::Tiny)
                    .threads(2)
                    .units(1),
            );
        for report in [
            OsExecutor.run_spec(&spec),
            UsfExecutor::new().run_spec(&spec),
        ] {
            assert_eq!(report.processes.len(), 2);
            for p in &report.processes {
                assert_eq!(p.unit_latencies_s.len(), 1);
            }
        }
    }
}
