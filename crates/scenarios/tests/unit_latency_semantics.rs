//! Differential test pinning the simulator's per-unit latency semantics.
//!
//! `SimExecutor` used to fabricate unit latencies as the uniform share
//! `makespan / units`. The `UnitMark` instrumentation replaced that with measured
//! completion timestamps; these tests pin the semantics so the placeholder cannot sneak
//! back:
//!
//! 1. completion timestamps are monotone and their differences telescope to the process
//!    makespan;
//! 2. for a *balanced solo* run the measured latencies equal the old uniform share
//!    (the two definitions agree exactly when units are actually uniform);
//! 3. for an MD-imbalanced ramped co-run the measured latencies are **non-uniform**
//!    (the one observable the placeholder could never produce).

use std::time::Duration;
use usf_scenarios::{
    Arrival, Executor, ProblemSize, ProcSpec, ScenarioSpec, SimExecutor, WorkloadKind,
};
use usf_simsched::{Machine, SchedModel};

fn sim(model: SchedModel) -> SimExecutor {
    let m = Machine::small_numa(8, 2);
    SimExecutor::new(m, model)
}

/// Latencies cumulated back into completion timestamps must be monotone, and their sum
/// must equal the process makespan (the telescoping property of true per-unit boundaries).
#[test]
fn latencies_telescope_to_the_makespan_for_every_model() {
    let mut spec = ScenarioSpec::new("telescope", 8);
    for i in 0..2 {
        spec = spec.process(
            ProcSpec::new(format!("md{i}"), WorkloadKind::Md)
                .size(ProblemSize::Tiny)
                .threads(8)
                .units(5)
                .arrival(Arrival::Ramp {
                    stagger: Duration::from_micros(150),
                }),
        );
    }
    for exec in [
        sim(SchedModel::Fair),
        sim(SchedModel::coop_default()),
        SimExecutor::partitioned_eq_on(sim(SchedModel::Fair).machine.clone(), &spec),
    ] {
        let r = exec.run_spec(&spec);
        for p in &r.processes {
            assert_eq!(p.unit_latencies_s.len(), 5, "{}", r.executor);
            assert!(
                p.unit_latencies_s.iter().all(|l| *l >= 0.0),
                "monotone timestamps mean non-negative diffs: {:?} ({})",
                p.unit_latencies_s,
                r.executor
            );
            let total: f64 = p.unit_latencies_s.iter().sum();
            let makespan = p.makespan.as_secs_f64();
            assert!(
                (total - makespan).abs() <= 1e-6 + makespan * 1e-3,
                "latency sum {total} must telescope to makespan {makespan} ({})",
                r.executor
            );
        }
    }
}

/// A balanced solo cooperative run paces its units identically, so the measured latencies
/// collapse onto the uniform share — the regime where the old placeholder was accidentally
/// correct, and the anchor that the new measurement agrees with it there.
#[test]
fn balanced_solo_coop_run_matches_the_uniform_share() {
    let units = 4;
    let spec = ScenarioSpec::new("balanced-solo", 8).process(
        ProcSpec::new("spin", WorkloadKind::SpinSleep)
            .size(ProblemSize::Tiny)
            .threads(4)
            .units(units),
    );
    let r = sim(SchedModel::coop_default()).run_spec(&spec);
    let p = &r.processes[0];
    let share = p.makespan.as_secs_f64() / units as f64;
    for (i, lat) in p.unit_latencies_s.iter().enumerate() {
        assert!(
            (lat - share).abs() <= share * 0.02,
            "unit {i}: measured {lat} vs uniform share {share} (diffs {:?})",
            p.unit_latencies_s
        );
    }
}

/// An imbalanced ramped co-run has genuinely different per-unit durations (early units run
/// with less interference than late ones). Uniform output here would mean the placeholder
/// regressed its way back in.
#[test]
fn imbalanced_corun_latencies_are_non_uniform() {
    let mut spec = ScenarioSpec::new("imbalanced", 8);
    for i in 0..2 {
        spec = spec.process(
            ProcSpec::new(format!("md{i}"), WorkloadKind::Md)
                .size(ProblemSize::Custom {
                    unit_work_us: 4_000,
                })
                .threads(8)
                .units(4)
                .arrival(Arrival::Ramp {
                    stagger: Duration::from_millis(1),
                }),
        );
    }
    for exec in [sim(SchedModel::Fair), sim(SchedModel::coop_default())] {
        let r = exec.run_spec(&spec);
        let p0 = &r.processes[0];
        let min = p0
            .unit_latencies_s
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = p0.unit_latencies_s.iter().copied().fold(0.0, f64::max);
        assert!(
            max > min * 1.02,
            "{}: latencies {:?} look like the uniform-share placeholder",
            r.executor,
            p0.unit_latencies_s
        );
        // The percentile bundle sees the spread too (p99 strictly above min).
        let s = p0.unit_summary();
        assert_eq!(s.count, 4);
        assert!(s.p99 > s.min, "summary {s:?}");
    }
}
