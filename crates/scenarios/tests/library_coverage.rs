//! Coverage of the canned scenario library: every entry (old and new) lowers, runs on the
//! simulator at smoke scale under the full model matrix, and its report satisfies the
//! invariants the figures depend on — Jain fairness in (0, 1], slowdown ≥ 1 − ε, and a
//! non-empty unit-latency percentile bundle per process.

use std::time::Duration;
use usf_scenarios::{library, Executor, ModelSel, ProblemSize, ScenarioSpec, SimExecutor};
use usf_simsched::Machine;

fn smoke_machine() -> Machine {
    Machine::small_numa(8, 2)
}

fn entries() -> Vec<ScenarioSpec> {
    library::all(8, ProblemSize::Tiny)
}

/// Every entry lowers into the simulator with the plan's structure intact.
#[test]
fn every_entry_lowers() {
    for spec in entries() {
        let plan = spec.plan();
        let lowered = SimExecutor::for_model(smoke_machine(), ModelSel::Coop, &spec).lower(&spec);
        assert_eq!(lowered.shapes.len(), plan.procs.len(), "{}", spec.name);
        for (shape, p) in lowered.shapes.iter().zip(&plan.procs) {
            assert_eq!(shape.threads, p.threads * lowered.scale, "{}", spec.name);
            assert_eq!(shape.units, p.units, "{}", spec.name);
        }
    }
}

/// Every entry runs to completion under every model of the matrix and produces a report
/// satisfying the invariants.
#[test]
fn every_entry_runs_under_the_full_model_matrix() {
    for spec in entries() {
        let spec = spec.models(ModelSel::ALL.to_vec());
        let reports = SimExecutor::sweep_models(&smoke_machine(), &spec);
        assert_eq!(reports.len(), ModelSel::ALL.len(), "{}", spec.name);
        for r in &reports {
            let tag = format!("{} under {}", r.scenario, r.executor);
            assert_eq!(r.processes.len(), spec.procs.len(), "{tag}");
            let jain = r.jain_fairness();
            assert!(
                jain > 0.0 && jain <= 1.0 + 1e-9,
                "Jain must be in (0,1]: {jain} ({tag})"
            );
            for (p, ps) in r.processes.iter().zip(&spec.procs) {
                assert!(p.makespan > Duration::ZERO, "{tag}/{}", p.name);
                let s = p.unit_summary();
                assert_eq!(
                    s.count, ps.units,
                    "percentile bundle non-empty ({tag}/{})",
                    p.name
                );
                assert!(s.p50 > 0.0 && s.p99 >= s.p50, "{tag}/{}: {s:?}", p.name);
            }
        }
    }
}

/// Slowdown vs the solo baseline is ≥ 1 − ε for every process of every entry: co-running
/// can cost nothing, but it cannot (beyond scheduling noise) make a process faster than
/// having the node to itself.
#[test]
fn slowdowns_are_at_least_one_under_fair_and_coop() {
    const EPS: f64 = 0.05;
    for spec in entries() {
        for sel in [ModelSel::Fair, ModelSel::Coop] {
            let exec = SimExecutor::for_model(smoke_machine(), sel, &spec);
            let r = exec.run_with_solo_baselines(&spec);
            for p in &r.processes {
                let s = p
                    .slowdown_vs_solo
                    .unwrap_or_else(|| panic!("{}/{}: no baseline", r.executor, p.name));
                assert!(
                    s >= 1.0 - EPS,
                    "{} under {}: process {} sped up past solo ({s})",
                    r.scenario,
                    r.executor,
                    p.name
                );
            }
        }
    }
}
