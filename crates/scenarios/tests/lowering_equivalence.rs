//! Property test: the three executors spawn the *same structure* for the same spec.
//!
//! For random small scenario specs, the simulator lowering ([`SimExecutor::lower`]) and a
//! real cooperative run ([`UsfExecutor::run_spec`]) must agree with the deterministic
//! [`ScenarioPlan`] on process count, per-process thread demand, per-process unit counts
//! and arrival order — the invariant that makes "one spec, three stacks" trustworthy.

use proptest::prelude::*;
use std::time::Duration;
use usf_scenarios::{
    Arrival, Executor, ProblemSize, ProcSpec, ScenarioSpec, SimExecutor, UsfExecutor, WorkloadKind,
};
use usf_simsched::{Machine, SchedModel};
use usf_workloads::workload::RuntimeFlavor;

/// Decode a drawn `(kind, flavor, arrival)` triple. The kinds stay synthetic so each
/// proptest case runs in milliseconds; matmul/Cholesky lowering shares the exact same
/// plan path.
fn decode(
    kind: usize,
    flavor: usize,
    arrival: usize,
    threads: usize,
    units: usize,
    i: usize,
) -> ProcSpec {
    let kind = match kind % 4 {
        0 => WorkloadKind::SpinSleep,
        1 => WorkloadKind::Md,
        2 => WorkloadKind::Microservices,
        _ => WorkloadKind::PoissonBurst,
    };
    let flavor = RuntimeFlavor::ALL[flavor % RuntimeFlavor::ALL.len()];
    let arrival = match arrival % 4 {
        0 => Arrival::Immediate,
        1 => Arrival::Delayed(Duration::from_millis((i as u64 + 1) % 3)),
        2 => Arrival::Ramp {
            stagger: Duration::from_micros(500),
        },
        _ => Arrival::Poisson {
            rate_per_sec: 400.0,
            seed: 11 + i as u64,
        },
    };
    ProcSpec::new(format!("p{i}"), kind)
        .size(ProblemSize::Tiny)
        .threads(threads)
        .units(units)
        .flavor(flavor)
        .arrival(arrival)
}

fn build_spec(cores: usize, draws: &[(usize, usize, usize, usize, usize)]) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("prop-lowering", cores);
    for (i, &(kind, flavor, arrival, threads, units)) in draws.iter().enumerate() {
        spec = spec.process(decode(kind, flavor, arrival, threads, units, i));
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn sim_and_usf_spawn_the_same_structure(
        cores in 2..4usize,
        draws in proptest::collection::vec(
            (0..4usize, 0..3usize, 0..4usize, 1..3usize, 1..4usize),
            1..4,
        ),
    ) {
        let spec = build_spec(cores, &draws);
        let plan = spec.plan();

        // --- Simulator lowering (machine cores == spec cores, so demand scale is 1). ---
        let machine = Machine::small(cores);
        let sim = SimExecutor::new(machine, SchedModel::coop_default());
        let lowered = sim.lower(&spec);
        prop_assert_eq!(lowered.scale, 1);
        prop_assert_eq!(lowered.shapes.len(), plan.procs.len());
        let mut total_threads = 0;
        for (shape, p) in lowered.shapes.iter().zip(&plan.procs) {
            prop_assert_eq!(&shape.name, &p.name);
            prop_assert_eq!(shape.threads, p.threads);
            prop_assert_eq!(shape.thread_ids.len(), p.threads);
            prop_assert_eq!(shape.units, p.units);
            prop_assert_eq!(shape.arrival, p.arrival);
            total_threads += shape.threads;
        }
        prop_assert_eq!(lowered.engine.thread_count(), total_threads);

        // Arrival order of the lowered shapes matches the plan's deterministic order.
        let mut sim_order: Vec<usize> = (0..lowered.shapes.len()).collect();
        sim_order.sort_by_key(|&i| (lowered.shapes[i].arrival, i));
        prop_assert_eq!(&sim_order, &plan.arrival_order());

        // --- Real cooperative run: same process/unit structure, actually executed. ---
        let report = UsfExecutor::new().run_spec(&spec);
        prop_assert_eq!(report.processes.len(), plan.procs.len());
        for (outcome, p) in report.processes.iter().zip(&plan.procs) {
            prop_assert_eq!(&outcome.name, &p.name);
            prop_assert_eq!(outcome.threads, p.threads);
            prop_assert_eq!(outcome.unit_latencies_s.len(), p.units);
            prop_assert_eq!(outcome.arrival, p.arrival);
            prop_assert!(outcome.makespan > Duration::ZERO);
        }
        let mut usf_order: Vec<usize> = (0..report.processes.len()).collect();
        usf_order.sort_by_key(|&i| (report.processes[i].arrival, i));
        prop_assert_eq!(&usf_order, &plan.arrival_order());

        // Every USF process attached at least one cooperative worker (the structure ran,
        // it was not just planned).
        let sched = report.sched.expect("USF reports scheduler metrics");
        prop_assert!(sched.get("attaches").unwrap() >= plan.procs.len() as f64);
    }
}
