//! Property tests for NUMA-aware placement (§5.6).
//!
//! For random specs × placements on random two-to-four-node topologies:
//!
//! 1. the `Spread`/`Packed` lowerings of [`ScenarioPlan::placement_masks`] assign
//!    pairwise-disjoint core masks within each group (and every mask is non-empty and
//!    inside the topology);
//! 2. node-pinned processes never execute outside their node in the simulator's placement
//!    trace (`thread_cores`), under both the fair and SCHED_COOP models — and therefore
//!    record zero *measured* cross-socket migrations.

use proptest::prelude::*;
use std::collections::HashSet;
use usf_nosv::Topology;
use usf_scenarios::{
    Placement, ProblemSize, ProcSpec, ScenarioPlan, ScenarioSpec, SimExecutor, WorkloadKind,
};
use usf_simsched::{Machine, SchedModel};

fn decode_placement(p: usize, nodes: usize) -> Placement {
    match p % 4 {
        0 => Placement::Anywhere,
        1 => Placement::Node(p % nodes),
        2 => Placement::Spread,
        _ => Placement::Packed,
    }
}

fn build_spec(cores: usize, nodes: usize, draws: &[(usize, usize, usize, usize)]) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("prop-placement", cores);
    for (i, &(kind, placement, threads, units)) in draws.iter().enumerate() {
        let kind = if kind % 2 == 0 {
            WorkloadKind::SpinSleep
        } else {
            WorkloadKind::Md
        };
        spec = spec.process(
            ProcSpec::new(format!("p{i}"), kind)
                .size(ProblemSize::Tiny)
                .threads(threads)
                .units(units)
                .placement(decode_placement(placement, nodes)),
        );
    }
    spec
}

/// The disjointness half, shared by both properties (panics on violation — the vendored
/// proptest's `prop_assert!` is panic-based).
fn assert_group_masks_disjoint(plan: &ScenarioPlan, topo: &Topology) {
    let masks = plan.placement_masks(topo);
    for group in [Placement::Spread, Placement::Packed] {
        let mut seen: HashSet<usize> = HashSet::new();
        for (i, p) in plan.procs.iter().enumerate() {
            if p.placement != group {
                continue;
            }
            let Some(mask) = &masks[i] else {
                // Degenerate overflow (more grouped processes than assignable cores) is
                // allowed to stay unrestricted — but only then.
                prop_assert!(
                    plan.procs.iter().filter(|q| q.placement == group).count()
                        > topo.num_cores() / topo.num_numa_nodes().max(1),
                    "process {i} lost its {group:?} mask without a capacity excuse"
                );
                continue;
            };
            prop_assert!(!mask.is_empty(), "process {i}: empty mask");
            for &c in mask {
                prop_assert!(c < topo.num_cores(), "process {i}: core {c} out of range");
                prop_assert!(
                    seen.insert(c),
                    "process {i}: core {c} already assigned to another {group:?} process"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn spread_and_packed_masks_partition_disjointly(
        nodes in 2..5usize,
        cores_per_node in 1..4usize,
        draws in proptest::collection::vec(
            (0..2usize, 0..8usize, 1..4usize, 1..3usize),
            1..5,
        ),
    ) {
        let cores = nodes * cores_per_node;
        let topo = Topology::new(cores, nodes);
        let plan = build_spec(cores, nodes, &draws).plan();
        assert_group_masks_disjoint(&plan, &topo);
    }

    #[test]
    fn node_pinned_processes_never_execute_outside_their_node(
        nodes in 2..5usize,
        cores_per_node in 1..3usize,
        model_sel in 0..2usize,
        draws in proptest::collection::vec(
            (0..2usize, 0..8usize, 1..3usize, 1..3usize),
            1..4,
        ),
    ) {
        let cores = nodes * cores_per_node;
        let topo = Topology::new(cores, nodes);
        let spec = build_spec(cores, nodes, &draws);
        let plan = spec.plan();
        assert_group_masks_disjoint(&plan, &topo);
        let masks = plan.placement_masks(&topo);

        let machine = Machine::small(cores).with_topology(topo.clone());
        let model = if model_sel == 0 {
            SchedModel::Fair
        } else {
            SchedModel::coop_default()
        };
        let lowered = SimExecutor::new(machine, model).lower(&spec);
        let report = lowered.engine.run();
        prop_assert!(!report.deadlocked);

        for (i, shape) in lowered.shapes.iter().enumerate() {
            let Some(mask) = &masks[i] else { continue };
            let allowed: HashSet<usize> = mask.iter().copied().collect();
            for tid in &shape.thread_ids {
                for &core in report.thread_cores.get(tid).into_iter().flatten() {
                    prop_assert!(
                        allowed.contains(&core),
                        "process {i} ({:?}) thread {tid} ran on core {core}, mask {mask:?}",
                        plan.procs[i].placement
                    );
                }
            }
            // A mask confined to one node can never migrate across sockets — the
            // measured counter must agree.
            let one_node = mask
                .iter()
                .map(|&c| topo.node_of(c))
                .collect::<HashSet<_>>()
                .len()
                == 1;
            if one_node {
                let (_, cross) = report.migrations_for(&shape.thread_ids);
                prop_assert_eq!(
                    cross, 0,
                    "node-confined process {} recorded cross-socket migrations", i
                );
            }
        }
    }
}
