//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! Implements the subset the USF property tests use: the [`proptest!`] macro over
//! `arg in strategy` test functions, `prop_assert!`/`prop_assert_eq!`, range, tuple,
//! [`collection::vec()`], [`option::of`] and [`bool::ANY`] strategies, and a
//! [`ProptestConfig`] whose `cases` field controls the iteration count.
//!
//! Differences from upstream: inputs are sampled (deterministically per test name and
//! case index) rather than explored, and failing cases are **not shrunk** — the panic
//! message reports the case number so it can be replayed by rerunning the test.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::Strategy;

/// Runner configuration; only `cases` is interpreted by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled input cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::*;

    /// Deterministic RNG handed to strategies: seeded from the test name so every run
    /// of a given property sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) inner: StdRng,
    }

    impl TestRng {
        /// An RNG deterministically derived from the property name.
        pub fn deterministic(test_name: &str) -> TestRng {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `Vec`s of `elem`-generated values with a length drawn from
    /// `size`. Created by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// A strategy for `Vec<S::Value>` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.inner.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `None` or `Some(inner)` with equal probability. Created by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// A strategy for `Option<S::Value>`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.inner.gen::<bool>() {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Strategies over `bool`.
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The strategy for an arbitrary `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.inner.gen::<core::primitive::bool>()
        }
    }
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` item becomes a
/// `#[test]` that samples its arguments `cases` times and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest: property {} failed at case {}/{} (inputs are deterministic per test name)",
                            stringify!($name), case + 1, config.cases,
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, reporting the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Sampled values stay inside their strategy's domain.
        #[test]
        fn domains_respected(
            x in 3usize..10,
            pair in (0u32..4, crate::option::of(0usize..4)),
            v in crate::collection::vec(1u32..5, 1..9),
            flag in crate::bool::ANY,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(pair.0 < 4);
            if let Some(p) = pair.1 { prop_assert!(p < 4); }
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|e| (1..5).contains(e)));
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        let sa: Vec<usize> = (0..16).map(|_| (0usize..100).sample(&mut a)).collect();
        let sb: Vec<usize> = (0..16).map(|_| (0usize..100).sample(&mut b)).collect();
        assert_eq!(sa, sb);
    }
}
