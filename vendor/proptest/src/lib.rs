//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! Implements the subset the USF property tests use: the [`proptest!`] macro over
//! `arg in strategy` test functions, `prop_assert!`/`prop_assert_eq!`, range, tuple,
//! [`collection::vec()`], [`option::of`] and [`bool::ANY`] strategies, and a
//! [`ProptestConfig`] whose `cases` field controls the iteration count.
//!
//! Differences from upstream: inputs are sampled (deterministically per test name and
//! case index) rather than explored. Failing cases **are** shrunk — a greedy loop over
//! [`Strategy::shrink`] candidates, bounded by `ProptestConfig::max_shrink_iters` —
//! and the panic message reports the minimal failing input alongside the case number.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::Strategy;

/// Runner configuration; only `cases` is interpreted by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled input cases per property.
    pub cases: u32,
    /// Upper bound on shrink candidates probed after a failure (0 disables shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 256,
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::*;

    /// Deterministic RNG handed to strategies: seeded from the test name so every run
    /// of a given property sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) inner: StdRng,
    }

    impl TestRng {
        /// An RNG deterministically derived from the property name.
        pub fn deterministic(test_name: &str) -> TestRng {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }

    /// Identity helper pinning a runner closure's argument type to the strategy's value
    /// type, so the macro-generated closure typechecks without explicit annotations.
    pub fn bind_runner<S, F>(_strat: &S, f: F) -> F
    where
        S: crate::strategy::Strategy,
        F: Fn(&S::Value) -> Result<(), Box<dyn std::any::Any + Send>>,
    {
        f
    }

    /// Greedily minimise a failing input: repeatedly probe the strategy's shrink
    /// candidates (most aggressive first) and restart from the first candidate that
    /// still fails, until no candidate fails or `max_iters` probes were spent. Returns
    /// the minimal failing input, the number of probes, and the panic payload of the
    /// minimal failure. The panic hook is silenced while probing so passing candidates
    /// don't spray backtraces.
    pub fn shrink_failure<S, F>(
        strat: &S,
        mut best: S::Value,
        mut payload: Box<dyn std::any::Any + Send>,
        max_iters: u32,
        run: &F,
    ) -> (S::Value, u32, Box<dyn std::any::Any + Send>)
    where
        S: crate::strategy::Strategy,
        F: Fn(&S::Value) -> Result<(), Box<dyn std::any::Any + Send>>,
    {
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut iters = 0u32;
        'minimise: while iters < max_iters {
            for candidate in strat.shrink(&best) {
                if iters >= max_iters {
                    break 'minimise;
                }
                iters += 1;
                if let Err(p) = run(&candidate) {
                    best = candidate;
                    payload = p;
                    continue 'minimise;
                }
            }
            break; // no candidate fails: `best` is locally minimal
        }
        std::panic::set_hook(prev_hook);
        (best, iters, payload)
    }
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `Vec`s of `elem`-generated values with a length drawn from
    /// `size`. Created by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// A strategy for `Vec<S::Value>` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.inner.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let min = self.size.start;
            let n = value.len();
            if n > min {
                // Structural shrinks first: keep either half, then drop single elements.
                let half = (n / 2).max(min);
                if half < n {
                    out.push(value[..half].to_vec());
                    out.push(value[n - half..].to_vec());
                }
                if n <= 64 {
                    for i in 0..n {
                        let mut v = value.clone();
                        v.remove(i);
                        out.push(v);
                    }
                }
            }
            // Element-wise shrinks (bounded on long vectors).
            for i in 0..n.min(32) {
                for cand in self.elem.shrink(&value[i]) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `None` or `Some(inner)` with equal probability. Created by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// A strategy for `Option<S::Value>`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.inner.gen::<bool>() {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
        fn shrink(&self, value: &Option<S::Value>) -> Vec<Option<S::Value>> {
            match value {
                None => Vec::new(),
                Some(v) => {
                    let mut out = vec![None];
                    out.extend(self.inner.shrink(v).into_iter().map(Some));
                    out
                }
            }
        }
    }
}

/// Strategies over `bool`.
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The strategy for an arbitrary `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.inner.gen::<core::primitive::bool>()
        }
        fn shrink(&self, value: &core::primitive::bool) -> Vec<core::primitive::bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` item becomes a
/// `#[test]` that samples its arguments `cases` times and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                // One owned tuple strategy over all arguments, so a failing input can be
                // shrunk as a unit.
                let strat = ($(($strat),)+);
                let run_one = $crate::test_runner::bind_runner(&strat, |input| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(input);
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || $body))
                        .map(|_| ())
                });
                for case in 0..config.cases {
                    let input = $crate::strategy::Strategy::sample(&strat, &mut rng);
                    if let Err(payload) = run_one(&input) {
                        let (minimal, iters, final_payload) = $crate::test_runner::shrink_failure(
                            &strat, input, payload, config.max_shrink_iters, &run_one,
                        );
                        eprintln!(
                            "proptest: property {} failed at case {}/{}; after {} shrink probe(s) the minimal failing input is:\n{:#?}",
                            stringify!($name), case + 1, config.cases, iters, minimal,
                        );
                        ::std::panic::resume_unwind(final_payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, reporting the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Sampled values stay inside their strategy's domain.
        #[test]
        fn domains_respected(
            x in 3usize..10,
            pair in (0u32..4, crate::option::of(0usize..4)),
            v in crate::collection::vec(1u32..5, 1..9),
            flag in crate::bool::ANY,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(pair.0 < 4);
            if let Some(p) = pair.1 { prop_assert!(p < 4); }
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|e| (1..5).contains(e)));
            let _ = flag;
        }
    }

    #[test]
    fn shrinking_minimises_vec() {
        use crate::strategy::Strategy;
        // A property failing whenever any element is >= 10: the canonical minimal
        // counterexample is the one-element vector [10].
        let strat = (crate::collection::vec(0u32..100, 1..20),);
        let run = |input: &(Vec<u32>,)| {
            let v = input.0.clone();
            std::panic::catch_unwind(move || assert!(v.iter().all(|&e| e < 10))).map(|_| ())
        };
        let mut rng = crate::test_runner::TestRng::deterministic("shrinking_minimises_vec");
        let failing = loop {
            let input = strat.sample(&mut rng);
            if run(&input).is_err() {
                break input;
            }
        };
        let payload = run(&failing).unwrap_err();
        let (minimal, iters, _) =
            crate::test_runner::shrink_failure(&strat, failing, payload, 500, &run);
        assert_eq!(minimal.0, vec![10], "greedy shrink must reach [10]");
        assert!(iters > 0 && iters <= 500);
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        let sa: Vec<usize> = (0..16).map(|_| (0usize..100).sample(&mut a)).collect();
        let sb: Vec<usize> = (0..16).map(|_| (0usize..100).sample(&mut b)).collect();
        assert_eq!(sa, sb);
    }
}
