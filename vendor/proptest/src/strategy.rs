//! The [`Strategy`] trait and its implementations for ranges and tuples.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of one type. Unlike upstream proptest there is no
/// value tree — a strategy is a deterministic sampler plus a [`Strategy::shrink`] step
/// function proposing strictly "smaller" candidates for a failing value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, most aggressive first. Every candidate must
    /// itself be a value the strategy could have produced, and repeated shrinking must
    /// terminate (each candidate strictly simpler). The default — no candidates — makes
    /// shrinking a no-op for strategies that don't implement it.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value > self.start {
                    // Most aggressive first: the range minimum, the midpoint, then one
                    // step down.
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2;
                    if mid != self.start && mid != *value {
                        out.push(mid);
                    }
                    let dec = *value - 1;
                    if dec != self.start && dec != mid {
                        out.push(dec);
                    }
                }
                out
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.inner.gen_range(self.clone())
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value > self.start {
            out.push(self.start);
            let mid = self.start + (*value - self.start) / 2.0;
            if mid > self.start && mid < *value {
                out.push(mid);
            }
        }
        out
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

impl_strategy_for_tuple!(A.0);
impl_strategy_for_tuple!(A.0, B.1);
impl_strategy_for_tuple!(A.0, B.1, C.2);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        (**self).shrink(value)
    }
}
