//! The [`Strategy`] trait and its implementations for ranges and tuples.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of one type. Unlike upstream proptest there is no
/// value tree or shrinking — a strategy is just a deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_strategy_for_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A.0);
impl_strategy_for_tuple!(A.0, B.1);
impl_strategy_for_tuple!(A.0, B.1, C.2);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}
