//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Provides the API subset the USF workloads use: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open numeric ranges, and [`rngs::StdRng`] backed by
//! xoshiro256++ (deterministic for a given seed, which is all the experiments require).

#![warn(missing_docs)]

use std::ops::Range;

/// A source of randomness: the minimal core every generator implements.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling conveniences layered on [`RngCore`]; blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform sample from the half-open range `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// A uniform sample of a whole type (`bool` and `f64` in `[0, 1)` supported).
    fn gen<T: SampleWhole>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_whole(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Uniform sample from `range` using `rng`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Types that can be sampled uniformly over their natural whole domain.
pub trait SampleWhole: Sized {
    /// Uniform sample of the whole domain.
    fn sample_whole<R: RngCore>(rng: &mut R) -> Self;
}

/// `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased integer sample in `[0, bound)` by rejection (Lemire widening multiply).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = (rng.next_u64() as u128).wrapping_mul(bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty f64 sample range");
        range.start + (range.end - range.start) * unit_f64(rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty integer sample range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleWhole for f64 {
    fn sample_whole<R: RngCore>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl SampleWhole for bool {
    fn sample_whole<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Statistically strong enough for workload generation and property tests; **not**
    /// cryptographically secure (unlike the real `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let i = r.gen_range(3usize..9);
            assert!((3..9).contains(&i));
        }
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
