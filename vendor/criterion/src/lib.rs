//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! Implements the harness API subset the USF benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a plain timing loop instead of
//! the upstream statistics engine. Each benchmark is warmed up briefly, then run for
//! `sample_size` samples of auto-calibrated iteration batches within (a fraction of)
//! `measurement_time`, and the mean/min/max per-iteration times are printed as text.
//!
//! Passing `--test` (which `cargo test --benches` does) switches to smoke mode: every
//! benchmark body runs exactly once so the harness stays fast under test runners.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark measurement settings.
#[derive(Debug, Clone, Copy)]
struct Settings {
    measurement_time: Duration,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            measurement_time: Duration::from_secs(1),
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
        }
    }
}

/// The benchmark manager: entry point handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
    smoke_test: bool,
}

impl Criterion {
    /// Applies harness command-line flags (`--test` selects run-once smoke mode; the
    /// filter/`--bench` arguments upstream accepts are ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.smoke_test = std::env::args().any(|a| a == "--test");
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.settings, self.smoke_test, &mut f);
        self
    }

    /// Opens a named group of related benchmarks sharing measurement settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings,
            smoke_test: self.smoke_test,
            _criterion: self,
        }
    }

    /// Prints the closing line upstream's report ends with.
    pub fn final_summary(&mut self) {
        println!();
    }
}

/// A named benchmark group; benchmarks registered through it share its settings and
/// report under `group/name`.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    smoke_test: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target measurement time for each benchmark in the group.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.settings.measurement_time = time;
        self
    }

    /// Sets how many timing samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.settings.sample_size = n;
        self
    }

    /// Sets the warm-up time run before sampling starts.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.settings.warm_up_time = time;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        let full = format!("{}/{}", self.name, id.label());
        run_benchmark(&full, self.settings, self.smoke_test, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label());
        run_benchmark(
            &full,
            self.settings,
            self.smoke_test,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group (kept for upstream API compatibility; reports print eagerly).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id labelled `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id labelled only by the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: None,
        }
    }
}

/// Timing-loop driver passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    settings: Settings,
    smoke_test: bool,
    f: &mut F,
) {
    if smoke_test {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{name}: smoke ok");
        return;
    }

    // Warm-up + calibration: find an iteration count that makes one sample take
    // roughly measurement_time / sample_size.
    let mut iters: u64 = 1;
    let warm_up_start = Instant::now();
    let mut per_iter;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
        if warm_up_start.elapsed() >= settings.warm_up_time {
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 24);
    }
    let sample_budget = settings.measurement_time / settings.sample_size as u32;
    let iters_per_sample =
        (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

    let mut samples = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{name}: mean {} (min {}, max {}) [{} samples x {} iters]",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
        samples.len(),
        iters_per_sample,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_run_reports_sane_times() {
        let mut c = Criterion::default();
        c.settings.measurement_time = Duration::from_millis(50);
        c.settings.warm_up_time = Duration::from_millis(5);
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.settings.measurement_time = Duration::from_millis(20);
        c.settings.warm_up_time = Duration::from_millis(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(10));
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
