//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot) crate.
//!
//! The build environment has no network access, so this crate provides the exact API
//! subset the USF stack uses, implemented over `std::sync`. Semantics match upstream
//! `parking_lot` where it matters to callers:
//!
//! * locks are **non-poisoning** — a panic while holding the lock does not make later
//!   `lock()` calls fail (std poison errors are swallowed with `into_inner`);
//! * [`Mutex::lock`] returns the guard directly (no `Result`);
//! * [`Condvar::wait`] takes `&mut MutexGuard` instead of consuming the guard.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, locking never fails and
/// poisoning is ignored.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the protected value (no locking needed — `&mut self` is exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Whether a timed condition-variable wait returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed (possibly spuriously —
    /// callers must still re-check their predicate).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`]. The `parking_lot` API takes the guard by
/// `&mut` reference, unlike `std::sync::Condvar` which consumes and returns it.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until another thread notifies this condvar. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.exchange_guard(guard, |g| {
            (self.inner.wait(g).unwrap_or_else(|e| e.into_inner()), ())
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let timed_out = self.exchange_guard(guard, |g| {
            let (g, r) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            (g, r.timed_out())
        });
        WaitTimeoutResult { timed_out }
    }

    /// Blocks until notified or the `deadline` instant is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wakes one waiting thread, returning whether a thread might have been woken.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }

    /// Runs a std-style guard-consuming wait through a `&mut` guard slot.
    ///
    /// SAFETY invariant: `f` must return a live guard for the same mutex; the slot is
    /// momentarily logically uninitialised between `read` and `write`, and `f` (std's
    /// wait with poison mapped away) does not unwind between them.
    fn exchange_guard<T, R>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        f: impl FnOnce(std::sync::MutexGuard<'_, T>) -> (std::sync::MutexGuard<'_, T>, R),
    ) -> R {
        unsafe {
            let std_guard = std::ptr::read(&guard.inner);
            let (new_guard, result) = f(std_guard);
            std::ptr::write(&mut guard.inner, new_guard);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(20));
        assert!(r.timed_out());
    }
}
