//! Simulated MD ensembles (the §5.6 / Figure 5 scenario): compare running two LAMMPS+DeePMD
//! ensembles exclusively, co-located, co-executed and under SCHED_COOP on the simulated
//! Marenostrum 5 node, reporting aggregate Katom-step/s and memory-bandwidth usage.
//!
//! Run with: `cargo run --release --example md_ensembles_sim`

use usf::simsched::SimTime;
use usf::workloads::md::{run_md_scenario, MdConfig, MdScenario};

fn main() {
    println!("Two-ensemble MD study on the simulated 112-core node (reduced step count for the example).\n");
    println!(
        "{:>22} | {:>16} | {:>14} | {:>12}",
        "scenario", "Katom-step/s", "avg BW (GB/s)", "time (s)"
    );
    let mut exclusive_perf = None;
    for scenario in MdScenario::ALL {
        let mut cfg = MdConfig::new(scenario);
        cfg.steps = 10;
        cfg.atoms = 50_000;
        cfg.init_time = SimTime::from_secs(2);
        let r = run_md_scenario(&cfg);
        println!(
            "{:>22} | {:>16.1} | {:>14.1} | {:>12.1}",
            scenario.label(),
            r.katom_steps_per_sec,
            r.average_bandwidth_gbps,
            r.total_time.as_secs_f64()
        );
        if scenario == MdScenario::Exclusive {
            exclusive_perf = Some(r.katom_steps_per_sec);
        } else if scenario == MdScenario::SchedCoopNode {
            if let Some(excl) = exclusive_perf {
                println!(
                    "{:>22}   (SCHED_COOP co-execution vs exclusive: {:.2}x aggregate throughput)",
                    "",
                    r.katom_steps_per_sec / excl
                );
            }
        }
    }
    println!("\nFull sweep (paper parameters): cargo run -p usf-bench --release --bin fig5_lammps --full");
}
