//! Nested runtimes (the §5.3 scenario at laptop scale): an outer task runtime executes tile
//! tasks of a blocked matmul, and every task calls a BLAS gemm parallelized by an inner
//! fork-join team — multiplying the thread count and oversubscribing the machine. The same
//! workload runs under the plain OS scheduler (baseline) and under USF's SCHED_COOP, and the
//! example prints both timings plus the scheduler metrics.
//!
//! Run with: `cargo run --release --example nested_runtimes`

use usf::prelude::*;
use usf_blas::{BarrierKind, BlasThreading};
use usf_workloads::matmul::{run_matmul, MatmulConfig};

fn config(exec: ExecMode) -> MatmulConfig {
    MatmulConfig {
        matrix_size: 256,
        task_size: 64,
        inner_threads: 4,
        outer_workers: 4,
        inner_threading: BlasThreading::OpenMpLike,
        barrier: BarrierKind::BusyYield { yield_every: 64 },
        exec,
        iterations: 1,
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    println!("host parallelism: {cores} cores");
    println!("outer tasks: 4 workers; inner BLAS teams: 4 threads each → oversubscribed\n");

    // Baseline: every runtime spawns plain OS threads; the kernel time-slices them.
    let baseline = run_matmul(&config(ExecMode::Os));
    println!(
        "baseline (Linux scheduler) : {:>8.1} MFLOP/s in {:.3}s over {} tasks",
        baseline.mflops,
        baseline.elapsed.as_secs_f64(),
        baseline.tasks
    );

    // SCHED_COOP: the same code, but all threads are cooperative USF workers.
    let usf = Usf::builder().cores(cores).build();
    let process = usf.process("nested-matmul");
    let coop = run_matmul(&config(ExecMode::Usf(process)));
    println!(
        "SCHED_COOP (USF)           : {:>8.1} MFLOP/s in {:.3}s over {} tasks",
        coop.mflops,
        coop.elapsed.as_secs_f64(),
        coop.tasks
    );

    let m = usf.metrics();
    let cache = usf.thread_cache_stats();
    println!("\n--- SCHED_COOP run details ---");
    println!("worker threads attached : {}", m.attaches);
    println!(
        "cooperative blocks      : {} (+{} elided)",
        m.pauses, m.pauses_elided
    );
    println!(
        "yields                  : {} ({} kept the core)",
        m.yields, m.yields_noop
    );
    println!(
        "thread cache            : {} created / {} reused",
        cache.created, cache.reused
    );
    println!(
        "speedup vs baseline     : {:.2}x (expect ≥1.0x under oversubscription; exact value depends on the host)",
        coop.mflops / baseline.mflops.max(1e-9)
    );
    usf.shutdown();
}
