//! Quickstart: build a USF instance, register two process domains, spawn cooperative
//! threads, exercise the blocking primitives and inspect the scheduler metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use usf::prelude::*;
use usf_core::sync::{Barrier, Mutex};

fn main() {
    // A USF instance with 4 virtual cores and the default SCHED_COOP policy. Every thread
    // spawned through it runs only when the scheduler grants it a core and is never
    // preempted by another USF thread — exactly the behaviour described in §3 of the paper.
    let usf = Usf::builder().cores(4).build();

    // Two process domains share the instance (the multi-process scenario): the centralized
    // scheduler rotates its 20 ms quantum between them at scheduling points.
    let app_a = usf.process("app-a");
    let app_b = usf.process("app-b");

    // --- app A: oversubscribed counter increments through a cooperative mutex -------------
    let counter = Arc::new(Mutex::new(0u64));
    let barrier = Arc::new(Barrier::new(8));
    let mut handles = Vec::new();
    for i in 0..8 {
        let counter = Arc::clone(&counter);
        let barrier = Arc::clone(&barrier);
        handles.push(app_a.spawn_named(format!("worker-{i}"), move || {
            for _ in 0..1000 {
                *counter.lock() += 1;
            }
            // Wait for the whole team: blocked waiters hand their core to other threads.
            barrier.wait();
            i
        }));
    }

    // --- app B: a few threads that sleep and yield (they fill the gaps left by app A) -----
    let mut b_handles = Vec::new();
    for i in 0..4 {
        b_handles.push(app_b.spawn(move || {
            usf_core::timing::sleep(std::time::Duration::from_millis(5));
            usf_core::timing::yield_now();
            i * 10
        }));
    }

    let sum_a: i32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let sum_b: i32 = b_handles.into_iter().map(|h| h.join().unwrap()).sum();
    println!("app A workers: 0..8 summed to {sum_a}");
    println!("app B workers returned {sum_b}");
    println!("shared counter reached {}", *counter.lock());

    // Scheduler metrics: how many scheduling points were exercised, how often the preferred
    // core was honoured, how many threads the cache reused.
    let m = usf.metrics();
    println!("\n--- scheduler metrics (SCHED_COOP) ---");
    println!("threads attached        : {}", m.attaches);
    println!("cooperative blocks      : {}", m.pauses);
    println!("voluntary yields        : {}", m.yields + m.yields_noop);
    println!("core grants             : {}", m.grants);
    println!(
        "affinity hit rate       : {:?}",
        m.affinity_hit_rate().map(|r| format!("{:.0}%", r * 100.0))
    );
    println!(
        "process quantum switches: {}",
        usf.nosv().scheduler().policy_rotations()
    );
    let cache = usf.thread_cache_stats();
    println!(
        "thread cache            : {} created, {} reused",
        cache.created, cache.reused
    );

    usf.shutdown();
}
