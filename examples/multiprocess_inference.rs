//! Multi-process AI microservices (the §5.5 scenario): a gateway process domain and three
//! "inference server" domains share one USF instance. Requests arrive over time; each
//! request fans out to the three servers, which run their (synthetic) inference kernels on
//! inner teams. This is the real-execution, laptop-scale companion of the Figure 4
//! simulation (`cargo run -p usf-bench --bin fig4_microservices`).
//!
//! Run with: `cargo run --release --example multiprocess_inference`

use std::sync::Arc;
use std::time::{Duration, Instant};
use usf::prelude::*;
use usf_blas::{BlasConfig, BlasHandle, Matrix};
use usf_core::sync::WaitGroup;
use usf_workloads::poisson::PoissonProcess;

/// One synthetic "model": a gemm of the given size on `threads` inner threads.
fn inference(blas: &BlasHandle, size: usize) -> f64 {
    let a = Matrix::pseudo_random(size, size, 7);
    let b = Matrix::pseudo_random(size, size, 8);
    let c = blas.gemm(&a, &b);
    c.frobenius_norm()
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let usf = Usf::builder().cores(cores).build();

    // One process domain per service, exactly like the four Python processes of the paper.
    let gateway = usf.process("gateway");
    let servers = [
        (usf.process("llama-server"), 96usize, 4usize), // (domain, matrix size, inner threads)
        (usf.process("gpt2-server"), 64, 2),
        (usf.process("roberta-server"), 48, 2),
    ];

    let requests = 6;
    let mut poisson = PoissonProcess::new(4.0, 11);
    let arrivals = poisson.arrival_times(requests);

    println!(
        "dispatching {requests} requests over ~{:.1}s onto {cores} cores\n",
        arrivals.last().unwrap().as_secs_f64()
    );

    let start = Instant::now();
    let mut request_handles = Vec::new();
    for (r, arrival) in arrivals.into_iter().enumerate() {
        // The gateway thread for this request: wait until the arrival time, fan out to the
        // three servers, wait for all answers.
        let servers = servers.clone();
        let handle = gateway.spawn_named(format!("request-{r}"), move || {
            let now = start.elapsed();
            if arrival > now {
                usf_core::timing::sleep(arrival - now);
            }
            let submitted = start.elapsed();
            let done = Arc::new(WaitGroup::with_count(servers.len()));
            for (domain, size, threads) in servers.iter() {
                let done = Arc::clone(&done);
                let size = *size;
                let threads = *threads;
                let domain = domain.clone();
                let exec = ExecMode::Usf(domain.clone());
                domain.spawn_named(format!("req{r}-{}", domain.name()), move || {
                    let blas = BlasHandle::new(BlasConfig::omp(threads, exec));
                    let norm = inference(&blas, size);
                    std::hint::black_box(norm);
                    done.done();
                });
            }
            done.wait();
            (submitted, start.elapsed())
        });
        request_handles.push(handle);
    }

    println!(
        "{:>10} {:>14} {:>14} {:>12}",
        "request", "submitted (s)", "completed (s)", "latency (s)"
    );
    for (r, h) in request_handles.into_iter().enumerate() {
        let (submitted, completed) = h.join().unwrap();
        println!(
            "{:>10} {:>14.3} {:>14.3} {:>12.3}",
            r,
            submitted.as_secs_f64(),
            completed.as_secs_f64(),
            (completed - submitted).as_secs_f64()
        );
    }

    let m = usf.metrics();
    println!(
        "\nscheduler: {} attaches, {} blocks, {} yields, {} process-quantum rotations",
        m.attaches,
        m.pauses,
        m.yields,
        usf.nosv().scheduler().policy_rotations()
    );
    println!("total wall time: {:.3}s", start.elapsed().as_secs_f64());
    println!(
        "\nFor the paper-scale version (112 simulated cores, LLaMA/GPT-2/RoBERTa service times,"
    );
    println!("all five partitioning schemes) run: cargo run -p usf-bench --release --bin fig4_microservices");

    // Give detached server threads time to be recycled before shutdown joins the cache.
    std::thread::sleep(Duration::from_millis(50));
    usf.shutdown();
}
