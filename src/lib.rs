//! **USF** — a reproduction of *"Rethinking Thread Scheduling under Oversubscription: A
//! User-Space Framework for Coordinating Multi-runtime and Multi-process Workloads"*
//! (Roca & Beltran, PPoPP 2026) as a Rust library stack.
//!
//! This facade crate re-exports the whole stack so applications and the examples can depend
//! on a single crate:
//!
//! * [`framework`] (`usf-core`) — the USF framework and SCHED_COOP: cooperative threads,
//!   blocking primitives, thread cache, process domains, execution modes.
//! * [`nosv`] (`usf-nosv`) — the nOS-V-like tasking substrate underneath.
//! * [`runtimes`] (`usf-runtimes`) — task-based and fork-join runtimes used for the
//!   multi-runtime composition scenarios.
//! * [`blas`] (`usf-blas`) — blocked linear-algebra kernels standing in for OpenBLAS/BLIS.
//! * [`simsched`] (`usf-simsched`) — the discrete-event scheduling simulator used to
//!   reproduce the paper's 112-core evaluation.
//! * [`workloads`] (`usf-workloads`) — the evaluation workloads (nested matmul, Cholesky,
//!   AI microservices, MD ensembles).
//! * [`scenarios`] (`usf-scenarios`) — the declarative co-run/oversubscription scenario
//!   engine: one spec runs unmodified on the OS baseline, the USF stack and the simulator.
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and the paper-to-repo
//! substitution table, and `EXPERIMENTS.md` for the reproduced tables and figures.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use usf_blas as blas;
pub use usf_core as framework;
pub use usf_nosv as nosv;
pub use usf_runtimes as runtimes;
pub use usf_scenarios as scenarios;
pub use usf_simsched as simsched;
pub use usf_workloads as workloads;

/// Commonly used items across the stack.
pub mod prelude {
    pub use usf_core::prelude::*;
    pub use usf_runtimes::{LoopSchedule, TaskDeps, TaskRuntime, Team, TransientPool, WaitPolicy};
    pub use usf_scenarios::{
        Executor, ModelSel, OsExecutor, Placement, ProcSpec, ScenarioSpec, SimExecutor, UsfExecutor,
    };
}
